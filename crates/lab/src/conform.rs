//! Differential conformance between the three substrates.
//!
//! The same protocol, the same inputs, the same adversary construction, the
//! same seed — run once on `mc-sim`'s model engine and once on `mc-runtime`'s
//! real threads under the lab scheduler. Because both substrates draw
//! per-process coins from `mix_seed(seed, pid)` streams and both let the
//! adversary pick from the identical pending-operation views, the two
//! executions must be *literally equal*: same decision per process, same
//! operation trace event-for-event, same work accounting. The lab's
//! schedule/coin script is then replayed through `mc-check`'s replayer to
//! close the triangle with the third substrate.
//!
//! Any inequality is a bug in one of the substrates (or a real divergence
//! between the model protocol and the runtime implementation) and is
//! reported as a [`Divergence`].

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use mc_check::{replay_to_completion, CoinPolicy};
use mc_core::{CoinConciliator, ConsensusBuilder, Ratifier, VotingSharedCoin};
use mc_model::ObjectSpec;
use mc_runtime::{
    AtomicMemory, ChaosPlan, CoinKind, ConciliatorChoice, Consensus, ConsensusEngine,
    ConsensusService, FaultPlan, FaultyMemory, SharedMemory, SupervisorOptions,
};
use mc_sim::harness::run_object;
use mc_sim::{Adversary, EngineConfig, RunError, Trace, WorkMetrics};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::control::LabError;
use crate::harness::Lab;

/// A consensus protocol with equivalent constructions on every substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Binary consensus: impatient conciliator + 3-register binary ratifier.
    Binary,
    /// `m`-valued consensus (`m > 2`): impatient conciliator + binomial
    /// quorum ratifier. (`m = 2` is [`Protocol::Binary`]: the model builder
    /// normalizes 2-valued to the binary scheme while the runtime would use
    /// a binomial scheme, so the pairing is only exact for `m > 2`.)
    Multivalued(u64),
    /// Binary consensus via Theorem 6: [`CoinConciliator`] stages over the
    /// Aspnes–Herlihy voting coin (vote quorum `quorum_factor · n²`) + the
    /// 3-register binary ratifier. Unlike the impatient protocols, the coin
    /// draws session-local randomness (its ±1 votes), which every substrate
    /// takes from the same per-process `mix_seed(seed, pid)` streams.
    Coin {
        /// Vote quorum as a multiple of `n²`. Must be positive.
        quorum_factor: u32,
    },
}

impl Protocol {
    /// The model-side specification (`mc-core`, runnable on sim and check).
    pub fn spec(&self) -> Arc<dyn ObjectSpec> {
        match self {
            Protocol::Binary => Arc::new(ConsensusBuilder::binary().build()),
            Protocol::Multivalued(m) => {
                assert!(*m > 2, "use Protocol::Binary for m = 2");
                Arc::new(ConsensusBuilder::multivalued(*m).build())
            }
            Protocol::Coin { quorum_factor } => {
                let coin = VotingSharedCoin::with_quorum_factor(*quorum_factor)
                    .expect("positive quorum factor");
                Arc::new(
                    ConsensusBuilder::new(
                        Arc::new(CoinConciliator::new(Arc::new(coin))),
                        Arc::new(Ratifier::binary()),
                    )
                    .build(),
                )
            }
        }
    }

    /// The runtime-side object over the lab's instrumented memory.
    pub fn runtime(&self, lab: &Lab, n: usize) -> Consensus<crate::LabMemory> {
        self.runtime_in(lab.memory(), n)
    }

    /// The runtime-side object over an arbitrary register substrate (e.g.
    /// the lab's memory wrapped in a [`FaultyMemory`] layer).
    pub fn runtime_in<M: SharedMemory>(&self, memory: M, n: usize) -> Consensus<M> {
        match self {
            Protocol::Binary => Consensus::builder().n(n).memory(memory).build(),
            Protocol::Multivalued(m) => {
                assert!(*m > 2, "use Protocol::Binary for m = 2");
                Consensus::builder().n(n).values(*m).memory(memory).build()
            }
            Protocol::Coin { quorum_factor } => Consensus::builder()
                .n(n)
                .memory(memory)
                .conciliator(ConciliatorChoice::Coin(CoinKind::Voting {
                    quorum_factor: *quorum_factor,
                }))
                .build(),
        }
    }

    /// Capacity of the protocol's value domain.
    pub fn capacity(&self) -> u64 {
        match self {
            Protocol::Binary | Protocol::Coin { .. } => 2,
            Protocol::Multivalued(m) => *m,
        }
    }

    /// The `mc-check` coin policy that replays this protocol's lab script.
    ///
    /// The impatient protocols draw no session-local randomness, so local
    /// coins are forbidden outright. The voting-coin protocol draws its ±1
    /// votes from the per-process `mix_seed(seed, pid)` streams — the same
    /// streams the sim engine and the lab workers use — so a
    /// [`CoinPolicy::Fixed`] replay reproduces them exactly.
    fn replay_policy(&self, seed: u64) -> CoinPolicy {
        match self {
            Protocol::Coin { .. } => CoinPolicy::Fixed(seed),
            _ => CoinPolicy::Forbid,
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Binary => write!(f, "binary"),
            Protocol::Multivalued(m) => write!(f, "multivalued({m})"),
            Protocol::Coin { quorum_factor } => write!(f, "coin[voting {quorum_factor}n^2]"),
        }
    }
}

/// How sim and lab disagreed. Constructing one of these from a conformance
/// run is always a bug somewhere.
#[derive(Debug, Clone, PartialEq)]
pub enum Divergence {
    /// One substrate hit the step limit, the other completed.
    Completion {
        /// Error from the sim side, if any.
        sim: Option<String>,
        /// Error from the lab side, if any.
        lab: Option<String>,
    },
    /// A process decided different values on the two substrates.
    Decisions {
        /// Per-process values from the sim engine.
        sim: Vec<u64>,
        /// Per-process values from the lab runtime.
        lab: Vec<u64>,
    },
    /// The operation traces differ; the index of the first differing event.
    Trace {
        /// First event index where the traces differ (or the shorter
        /// length, when one is a prefix of the other).
        at: usize,
        /// The sim event at that index, rendered.
        sim: Option<String>,
        /// The lab event at that index, rendered.
        lab: Option<String>,
    },
    /// Work accounting differs.
    Metrics {
        /// The sim engine's accounting.
        sim: WorkMetrics,
        /// The lab's accounting.
        lab: WorkMetrics,
    },
    /// Replaying the lab's schedule/coin script through `mc-check` failed
    /// or produced different decisions.
    Replay {
        /// What the replayer reported.
        detail: String,
    },
    /// The batching service pipeline decided differently from the direct
    /// engine submit path.
    Service {
        /// Index of the first proposal whose decisions differ.
        at: usize,
        /// What `ConsensusEngine::submit` decided for that proposal.
        submit: u64,
        /// What the service handle reported (a decision or an error).
        service: String,
    },
    /// The chaos service leg failed exactly-once reconciliation: a
    /// proposal was lost, poisoned, or double-counted even though the
    /// chaos plan stayed within the supervisor's restart budget.
    Chaos {
        /// What failed to reconcile.
        detail: String,
    },
    /// The replicated store diverged from sequential application: a
    /// response, the final state, or the exactly-once ledger differed
    /// from replaying the same commands on a bare state machine.
    Store {
        /// What diverged.
        detail: String,
    },
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::Completion { sim, lab } => write!(
                f,
                "completion divergence: sim={}, lab={}",
                sim.as_deref().unwrap_or("ok"),
                lab.as_deref().unwrap_or("ok"),
            ),
            Divergence::Decisions { sim, lab } => {
                write!(f, "decision divergence: sim={sim:?}, lab={lab:?}")
            }
            Divergence::Trace { at, sim, lab } => write!(
                f,
                "trace divergence at event {at}: sim={}, lab={}",
                sim.as_deref().unwrap_or("<end>"),
                lab.as_deref().unwrap_or("<end>"),
            ),
            Divergence::Metrics { sim, lab } => {
                write!(f, "metrics divergence: sim={sim:?}, lab={lab:?}")
            }
            Divergence::Replay { detail } => write!(f, "replay divergence: {detail}"),
            Divergence::Service {
                at,
                submit,
                service,
            } => write!(
                f,
                "service divergence at proposal {at}: submit={submit}, service={service}",
            ),
            Divergence::Chaos { detail } => write!(f, "chaos divergence: {detail}"),
            Divergence::Store { detail } => write!(f, "store divergence: {detail}"),
        }
    }
}

impl Error for Divergence {}

/// What a conformance check concluded when it did *not* find a divergence.
#[derive(Debug, Clone, PartialEq)]
pub enum Conformance {
    /// Both substrates completed and agreed on everything.
    Agreed {
        /// The per-process decision values (identical on both substrates).
        decisions: Vec<u64>,
        /// The shared operation trace.
        trace: Trace,
        /// The shared work accounting.
        metrics: WorkMetrics,
    },
    /// Both substrates hit the step limit — agreement about non-completion.
    BothStepLimited,
}

/// Runs `protocol` on `inputs` under identically-constructed adversaries on
/// the sim engine and the lab runtime and checks the executions are equal;
/// then replays the lab's script on the model via `mc-check`.
///
/// `make_adversary` is called once per substrate so each side gets a fresh
/// adversary in its initial state (same construction + same view sequence ⇒
/// same choices).
///
/// # Errors
///
/// Returns the first [`Divergence`] found.
pub fn check_conformance(
    protocol: Protocol,
    inputs: &[u64],
    make_adversary: &dyn Fn() -> Box<dyn Adversary + Send>,
    seed: u64,
    max_steps: u64,
) -> Result<Conformance, Divergence> {
    check_conformance_wrapped(protocol, inputs, make_adversary, seed, max_steps, |m| m)
}

/// [`check_conformance`] for the Theorem 6 protocol [`Protocol::Coin`]:
/// binary consensus whose conciliator stages wrap the Aspnes–Herlihy voting
/// coin with vote quorum `quorum_factor · n²`.
///
/// This is the coin-portfolio pin: the runtime's
/// [`CoinConciliator`](mc_runtime::CoinConciliator) +
/// [`VotingCoin`](mc_runtime::VotingCoin) must be operation-for-operation
/// identical to the model's [`CoinConciliator`] +
/// [`VotingSharedCoin`] specs, decisions, traces, work accounting and all —
/// and the recorded schedule must replay through `mc-check` under
/// [`CoinPolicy::Fixed`] to the same decisions.
///
/// # Errors
///
/// Returns the first [`Divergence`] found.
///
/// # Panics
///
/// Panics if `quorum_factor` is 0.
pub fn check_coin_conformance(
    quorum_factor: u32,
    inputs: &[u64],
    make_adversary: &dyn Fn() -> Box<dyn Adversary + Send>,
    seed: u64,
    max_steps: u64,
) -> Result<Conformance, Divergence> {
    check_conformance(
        Protocol::Coin { quorum_factor },
        inputs,
        make_adversary,
        seed,
        max_steps,
    )
}

/// [`check_conformance`] with the lab side running through a
/// [`FaultyMemory`] layer under `plan`.
///
/// With an *empty* plan this must return exactly what [`check_conformance`]
/// returns — the fault layer's passthrough is conformance-identical to the
/// bare substrate (decisions, traces, `WorkMetrics`, replay) — which is the
/// guarantee this function exists to check. A non-empty plan perturbs the
/// lab side only, so divergences are then expected and meaningful: they
/// show which fault classes the sim's fault-free execution can distinguish.
///
/// # Errors
///
/// Returns the first [`Divergence`] found.
pub fn check_conformance_with_plan(
    protocol: Protocol,
    inputs: &[u64],
    make_adversary: &dyn Fn() -> Box<dyn Adversary + Send>,
    seed: u64,
    max_steps: u64,
    plan: FaultPlan,
) -> Result<Conformance, Divergence> {
    check_conformance_wrapped(protocol, inputs, make_adversary, seed, max_steps, |m| {
        FaultyMemory::new(m, plan)
    })
}

/// Runs `protocol` twice on the lab substrate at the same `(adversary,
/// seed)`: once on a freshly built object, then again on the *same* object
/// after [`Consensus::reset`], over a register file rearmed by
/// [`Lab::reset_epoch`]. The two executions must be identical in every
/// observable — per-process decisions, the operation trace event-for-event,
/// the schedule/coin script, and the `WorkMetrics` — which is the ground
/// truth that a recycled generation-tagged object is indistinguishable from
/// a fresh one: every stale register reads as initial, so the adversary sees
/// the same views and makes the same choices.
///
/// In a returned [`Divergence`], the `sim` fields hold the *fresh* run's
/// view and the `lab` fields the *recycled* run's. A fresh run that hits the
/// step limit returns [`Conformance::BothStepLimited`]: a step-limited epoch
/// ends with operations still posted, so its register file cannot be
/// rearmed mid-flight and there is nothing to recycle.
///
/// # Errors
///
/// Returns the first [`Divergence`] between the fresh and recycled runs.
pub fn check_recycled_conformance(
    protocol: Protocol,
    inputs: &[u64],
    make_adversary: &dyn Fn() -> Box<dyn Adversary + Send>,
    seed: u64,
    max_steps: u64,
) -> Result<Conformance, Divergence> {
    let n = inputs.len();
    assert!(n > 0, "need at least one process");
    for &input in inputs {
        assert!(input < protocol.capacity(), "input out of range");
    }

    let mut lab = Lab::new(n, make_adversary(), &[], max_steps);
    let mut consensus = protocol.runtime(&lab, n);
    let fresh = match lab.run(seed, |pid, rng| consensus.decide_as(pid, inputs[pid], rng)) {
        Ok(report) => report,
        Err(LabError::StepLimitExceeded { .. }) => return Ok(Conformance::BothStepLimited),
        Err(err) => {
            return Err(Divergence::Completion {
                sim: Some(err.to_string()),
                lab: None,
            })
        }
    };

    consensus.reset();
    lab.reset_epoch(make_adversary(), &[]);
    let recycled = match lab.run(seed, |pid, rng| consensus.decide_as(pid, inputs[pid], rng)) {
        Ok(report) => report,
        Err(err) => {
            // The fresh run completed at this (adversary, seed), so the
            // recycled run failing — even on the step limit — is divergence.
            return Err(Divergence::Completion {
                sim: None,
                lab: Some(err.to_string()),
            });
        }
    };

    let fresh_decisions: Vec<u64> = fresh
        .decisions
        .iter()
        .map(|d| d.expect("no crashes configured"))
        .collect();
    let recycled_decisions: Vec<u64> = recycled
        .decisions
        .iter()
        .map(|d| d.expect("no crashes configured"))
        .collect();
    if fresh_decisions != recycled_decisions {
        return Err(Divergence::Decisions {
            sim: fresh_decisions,
            lab: recycled_decisions,
        });
    }

    if fresh.trace != recycled.trace {
        let at = fresh
            .trace
            .events()
            .iter()
            .zip(recycled.trace.events())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| fresh.trace.len().min(recycled.trace.len()));
        return Err(Divergence::Trace {
            at,
            sim: fresh.trace.events().get(at).map(|e| e.to_string()),
            lab: recycled.trace.events().get(at).map(|e| e.to_string()),
        });
    }

    if fresh.metrics != recycled.metrics {
        return Err(Divergence::Metrics {
            sim: fresh.metrics,
            lab: recycled.metrics,
        });
    }

    if fresh.path != recycled.path {
        let at = fresh
            .path
            .iter()
            .zip(recycled.path.iter())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| fresh.path.len().min(recycled.path.len()));
        return Err(Divergence::Replay {
            detail: format!(
                "recycled schedule/coin script differs from fresh at event {at} \
                 (fresh has {} events, recycled {})",
                fresh.path.len(),
                recycled.path.len()
            ),
        });
    }

    Ok(Conformance::Agreed {
        decisions: recycled_decisions,
        trace: recycled.trace,
        metrics: recycled.metrics,
    })
}

/// Runs the same `(instance_id, proposal)` stream through two
/// identically-configured engines — once via the direct
/// [`ConsensusEngine::submit`] path, once through a pipelined
/// [`ConsensusService`] — and checks that every proposal decides the same
/// value on both.
///
/// Both legs run single-participant instances (`participants = 1`), where a
/// decision is deterministic, so the comparison is exact: the batching
/// frontend (intake rings, worker threads, detached slots, handle
/// completion) must be observationally identical to calling the engine
/// inline. Any inequality is a bug in the service pipeline — an item
/// reordered within an instance, a decision delivered to the wrong handle,
/// or a proposal lost or poisoned in flight.
///
/// Returns the shared decision vector, in submission order.
///
/// # Errors
///
/// Returns [`Divergence::Service`] at the first differing proposal.
///
/// # Panics
///
/// Panics if `proposals` is empty or any proposal value is outside the
/// protocol's capacity.
pub fn check_service_conformance(
    protocol: Protocol,
    proposals: &[(u64, u64)],
    seed: u64,
) -> Result<Vec<u64>, Divergence> {
    assert!(!proposals.is_empty(), "need at least one proposal");
    for &(_, proposal) in proposals {
        assert!(proposal < protocol.capacity(), "proposal out of range");
    }

    // Direct leg: decide each proposal inline on the caller's thread.
    let engine = ConsensusEngine::builder()
        .n(2)
        .values(protocol.capacity())
        .participants(1)
        .build();
    let mut rng = SmallRng::seed_from_u64(seed);
    let direct: Vec<u64> = proposals
        .iter()
        .map(|&(id, proposal)| engine.submit(id, proposal, &mut rng))
        .collect();

    // Service leg: the same stream through the intake rings and workers.
    let service = ConsensusService::builder()
        .n(2)
        .values(protocol.capacity())
        .participants(1)
        .seed(seed)
        .build();
    let handles = service.submit_batch(proposals);
    let mut decisions = Vec::with_capacity(proposals.len());
    for (at, handle) in handles.into_iter().enumerate() {
        let outcome = handle.and_then(|h| h.wait());
        match outcome {
            Ok(value) if value == direct[at] => decisions.push(value),
            Ok(value) => {
                return Err(Divergence::Service {
                    at,
                    submit: direct[at],
                    service: value.to_string(),
                })
            }
            Err(err) => {
                return Err(Divergence::Service {
                    at,
                    submit: direct[at],
                    service: err.to_string(),
                })
            }
        }
    }
    Ok(decisions)
}

/// [`check_service_conformance`] under fire: runs the same
/// `(instance_id, proposal)` stream through a direct fault-free engine and
/// through a [`ConsensusService`] driven by a seeded
/// [`ChaosPlan`] — injected worker panics and stalls at drain boundaries,
/// plus the plan's register-level [`FaultPlan`] layered under the engine
/// via [`FaultyMemory`] — and checks the service's recovery machinery end
/// to end:
///
/// * **Exactly one decision per admitted proposal.** Every handle must
///   resolve to a decision (no `Poisoned`, no hang), and the service's
///   telemetry ledger must reconcile: `proposals_enqueued == decisions`,
///   queue depth back to zero, restarts within the supervisor budget.
/// * **Service ≡ sequential.** Both legs run single-participant
///   instances, where the decided value is deterministic, so each decision
///   must equal what the direct engine decided — across however many
///   worker restarts the plan forced. (Register faults can cost retries,
///   never change a single-participant decision, so the comparison stays
///   exact under the fault plan too.)
///
/// Returns the shared decision vector, in submission order.
///
/// # Errors
///
/// [`Divergence::Service`] at the first proposal whose decision differs
/// (or errored); [`Divergence::Chaos`] when the telemetry ledger fails
/// exactly-once reconciliation.
///
/// # Panics
///
/// Panics if `proposals` is empty, any proposal value is outside the
/// protocol's capacity, or `plan.max_panics` exceeds
/// `supervisor.restart_budget` (a plan designed to exhaust the budget
/// legitimately poisons proposals — that is the supervisor's terminal
/// contract, not a conformance question).
pub fn check_chaos_conformance(
    protocol: Protocol,
    proposals: &[(u64, u64)],
    plan: ChaosPlan,
    supervisor: SupervisorOptions,
    seed: u64,
) -> Result<Vec<u64>, Divergence> {
    assert!(!proposals.is_empty(), "need at least one proposal");
    for &(_, proposal) in proposals {
        assert!(proposal < protocol.capacity(), "proposal out of range");
    }
    assert!(
        plan.max_panics <= supervisor.restart_budget,
        "chaos plan ({} panics) exceeds the restart budget ({})",
        plan.max_panics,
        supervisor.restart_budget
    );

    // Direct leg: fault-free, inline — the reference decisions.
    let engine = ConsensusEngine::builder()
        .n(2)
        .values(protocol.capacity())
        .participants(1)
        .build();
    let mut rng = SmallRng::seed_from_u64(seed);
    let direct: Vec<u64> = proposals
        .iter()
        .map(|&(id, proposal)| engine.submit(id, proposal, &mut rng))
        .collect();

    // Chaos leg: one worker (so the plan's drain schedule is
    // deterministic), the plan's register faults under the engine, its
    // panics/stalls inside the service.
    let service = ConsensusService::builder()
        .n(2)
        .values(protocol.capacity())
        .participants(1)
        .shards(1)
        .workers(1)
        .seed(seed)
        .memory(FaultyMemory::new(AtomicMemory, plan.faults))
        .chaos(plan)
        .supervisor(supervisor)
        .build();
    let handles = service.submit_batch(proposals);
    let mut decisions = Vec::with_capacity(proposals.len());
    for (at, handle) in handles.into_iter().enumerate() {
        match handle.and_then(|h| h.wait()) {
            Ok(value) if value == direct[at] => decisions.push(value),
            Ok(value) => {
                return Err(Divergence::Service {
                    at,
                    submit: direct[at],
                    service: value.to_string(),
                })
            }
            Err(err) => {
                return Err(Divergence::Service {
                    at,
                    submit: direct[at],
                    service: err.to_string(),
                })
            }
        }
    }

    // Exactly-once reconciliation over the service's own ledger.
    let telemetry = std::sync::Arc::clone(service.engine().telemetry_handle());
    drop(service); // join workers so every counter has settled
    let enqueued = telemetry.proposals_enqueued();
    let decided = telemetry.decisions();
    let restarts = telemetry.worker_restarts();
    if enqueued != proposals.len() as u64 || decided != enqueued {
        return Err(Divergence::Chaos {
            detail: format!(
                "expected {} enqueued == decided, got enqueued={enqueued} decided={decided}",
                proposals.len()
            ),
        });
    }
    if telemetry.queue_depth() != 0 {
        return Err(Divergence::Chaos {
            detail: format!("queue depth {} after full drain", telemetry.queue_depth()),
        });
    }
    if restarts > u64::from(supervisor.restart_budget) {
        return Err(Divergence::Chaos {
            detail: format!(
                "{restarts} restarts exceed the budget {}",
                supervisor.restart_budget
            ),
        });
    }
    Ok(decisions)
}

/// Replicated-store ≡ sequential-apply conformance: drives a seeded
/// script of KV commands from `clients` interleaved sessions through a
/// [`ReplicatedStore`] and replays the identical stream on a bare
/// [`KvStore`], demanding equality end to end.
///
/// The driver issues commands round-robin across the sessions and waits
/// for each response before the next command, so the store's apply order
/// is exactly the issue order and the bare machine is a complete oracle:
///
/// * **Responses.** Every store response must equal the sequential
///   machine's response for the same command — `Get`s observing earlier
///   writes, `Cas` outcomes, previous values on `Put`/`Delete`.
/// * **Duplicate delivery.** A seeded subset of commands is re-delivered
///   (several extra copies under the same sequence number, the client
///   retry path). Every copy must return the originally-cached response,
///   and none may re-apply: the exactly-once ledger
///   (`commands_applied` = distinct commands, `duplicates_served` =
///   extra copies) must reconcile, and stale re-delivery of the
///   *previous* sequence number must be refused as
///   [`StoreError::Stale`].
/// * **Final state.** The store's machine (read through a lease-gated
///   fast read) must equal the sequential machine, snapshot for
///   snapshot.
///
/// Returns the number of distinct commands applied.
///
/// # Errors
///
/// Returns [`Divergence::Store`] naming the first inequality.
///
/// # Panics
///
/// Panics if `clients` or `commands_per_client` is zero.
pub fn check_store_conformance(
    clients: u64,
    commands_per_client: u64,
    sequencers: usize,
    seed: u64,
) -> Result<u64, Divergence> {
    use mc_store::{KvCommand, KvStore, ReplicatedStore, StateMachine, StoreError};
    use rand::RngExt;

    assert!(clients > 0, "need at least one client");
    assert!(commands_per_client > 0, "need at least one command");

    let mut store = ReplicatedStore::<KvStore>::builder()
        .sequencers(sequencers)
        .batch_commands(8)
        .snapshot_every(16)
        .seed(seed)
        .build();
    let mut reference = KvStore::new();
    let mut rng = SmallRng::seed_from_u64(seed);
    // Small key space shared by every client, so sessions interact.
    let keys = (clients * 4).max(8);

    let mut distinct = 0u64;
    let mut duplicates = 0u64;
    let mut stale_probes = 0u64;
    for round in 0..commands_per_client {
        for client in 1..=clients {
            let key = rng.random_range(0..keys);
            let command = match rng.random_range(0u32..4) {
                0 => KvCommand::Get { key },
                1 => KvCommand::Put {
                    key,
                    value: rng.random_range(0u64..1_000),
                },
                2 => KvCommand::Cas {
                    key,
                    expect: reference.get(key),
                    value: rng.random_range(0u64..1_000),
                },
                _ => KvCommand::Delete { key },
            };
            let expected = reference.apply(&command);
            distinct += 1;
            let got = store.submit(client, round + 1, command).wait();
            if got != Ok(expected) {
                return Err(Divergence::Store {
                    detail: format!(
                        "client {client} round {round}: store answered {got:?}, \
                         sequential apply {expected:?} for {command:?}"
                    ),
                });
            }
            // Duplicate-delivery leg: re-deliver this command a few more
            // times under the same sequence number; every copy must be
            // served from the session cache with the original response.
            if rng.random_bool(0.25) {
                for copy in 0..rng.random_range(1u32..4) {
                    duplicates += 1;
                    let again = store.submit(client, round + 1, command).wait();
                    if again != Ok(expected) {
                        return Err(Divergence::Store {
                            detail: format!(
                                "client {client} round {round} duplicate copy {copy}: \
                                 got {again:?}, cached response was {expected:?}"
                            ),
                        });
                    }
                }
            }
            // Stale leg: a copy of the *previous* command must be refused
            // (its cached response is already overwritten).
            if round > 0 && rng.random_bool(0.1) {
                stale_probes += 1;
                let stale = store.submit(client, round, command).wait();
                if stale
                    != Err(StoreError::Stale {
                        last_seq: round + 1,
                    })
                {
                    return Err(Divergence::Store {
                        detail: format!(
                            "client {client} round {round}: stale re-delivery \
                             answered {stale:?} instead of Stale"
                        ),
                    });
                }
            }
        }
    }

    // Exactly-once ledger.
    let telemetry = store.telemetry();
    if telemetry.commands_applied() != distinct {
        return Err(Divergence::Store {
            detail: format!(
                "{} commands applied, {distinct} distinct submitted",
                telemetry.commands_applied()
            ),
        });
    }
    if telemetry.duplicates_served() != duplicates {
        return Err(Divergence::Store {
            detail: format!(
                "{} duplicates served, {duplicates} re-delivered",
                telemetry.duplicates_served()
            ),
        });
    }
    if telemetry.stale_commands() != stale_probes {
        return Err(Divergence::Store {
            detail: format!(
                "{} stale commands counted, {stale_probes} probed",
                telemetry.stale_commands()
            ),
        });
    }
    if telemetry.sessions_created() != clients {
        return Err(Divergence::Store {
            detail: format!(
                "{} sessions created for {clients} clients",
                telemetry.sessions_created()
            ),
        });
    }

    // Final state, observed through the lease-gated fast-read path.
    let store_snapshot = store.read_with(u64::MAX, |kv| kv.snapshot());
    if store_snapshot != reference.snapshot() {
        return Err(Divergence::Store {
            detail: format!(
                "final state diverged: store {} pairs, sequential {} pairs",
                store_snapshot.len(),
                reference.snapshot().len()
            ),
        });
    }
    store.shutdown();
    Ok(distinct)
}

fn check_conformance_wrapped<M: SharedMemory>(
    protocol: Protocol,
    inputs: &[u64],
    make_adversary: &dyn Fn() -> Box<dyn Adversary + Send>,
    seed: u64,
    max_steps: u64,
    wrap: impl FnOnce(crate::LabMemory) -> M,
) -> Result<Conformance, Divergence> {
    let n = inputs.len();
    assert!(n > 0, "need at least one process");
    for &input in inputs {
        assert!(input < protocol.capacity(), "input out of range");
    }
    let spec = protocol.spec();

    let sim_outcome = run_object(
        spec.as_ref(),
        inputs,
        &mut *make_adversary(),
        seed,
        &EngineConfig::default()
            .with_max_steps(max_steps)
            .with_trace(),
    );

    let lab = Lab::new(n, make_adversary(), &[], max_steps);
    let consensus = protocol.runtime_in(wrap(lab.memory()), n);
    // `decide_as` binds the lab worker's pid to the runtime thread slot —
    // the model's sessions are pid-addressed (the voting coin writes its
    // own tally register), so the pairing must be explicit, not ticketed.
    let lab_report = lab.run(seed, |pid, rng| consensus.decide_as(pid, inputs[pid], rng));

    let (sim_outcome, lab_report) = match (sim_outcome, lab_report) {
        (Ok(sim), Ok(lab)) => (sim, lab),
        (Err(RunError::StepLimitExceeded { .. }), Err(LabError::StepLimitExceeded { .. })) => {
            return Ok(Conformance::BothStepLimited)
        }
        (sim, lab) => {
            return Err(Divergence::Completion {
                sim: sim.err().map(|e| e.to_string()),
                lab: lab.err().map(|e| e.to_string()),
            })
        }
    };

    let sim_decisions = sim_outcome.values();
    let lab_decisions: Vec<u64> = lab_report
        .decisions
        .iter()
        .map(|d| d.expect("no crashes configured"))
        .collect();
    if sim_decisions != lab_decisions {
        return Err(Divergence::Decisions {
            sim: sim_decisions,
            lab: lab_decisions,
        });
    }

    let sim_trace = sim_outcome.trace.expect("trace recording was enabled");
    if sim_trace != lab_report.trace {
        let at = sim_trace
            .events()
            .iter()
            .zip(lab_report.trace.events())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| sim_trace.len().min(lab_report.trace.len()));
        return Err(Divergence::Trace {
            at,
            sim: sim_trace.events().get(at).map(|e| e.to_string()),
            lab: lab_report.trace.events().get(at).map(|e| e.to_string()),
        });
    }

    if sim_outcome.metrics != lab_report.metrics {
        return Err(Divergence::Metrics {
            sim: sim_outcome.metrics,
            lab: lab_report.metrics,
        });
    }

    // Close the triangle: the recorded schedule/coin script must drive the
    // *model* to the same decisions. The per-protocol policy decides how
    // session-local randomness replays (forbidden for the impatient
    // protocols, pid-seeded streams for the voting coin).
    match replay_to_completion(
        spec.as_ref(),
        inputs,
        protocol.replay_policy(seed),
        max_steps as usize,
        &lab_report.path,
    ) {
        Ok(replayed) => {
            let replay_values: Vec<u64> = replayed.iter().map(|d| d.value()).collect();
            if replay_values != lab_decisions {
                return Err(Divergence::Replay {
                    detail: format!(
                        "replayed decisions {replay_values:?} != lab decisions {lab_decisions:?}"
                    ),
                });
            }
        }
        Err(err) => {
            return Err(Divergence::Replay {
                detail: err.to_string(),
            })
        }
    }

    Ok(Conformance::Agreed {
        decisions: lab_decisions,
        trace: lab_report.trace,
        metrics: lab_report.metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_sim::adversary::{ImpatienceExploiter, RandomScheduler, RoundRobin, SplitKeeper};
    use mc_sim::sched::PctScheduler;

    fn adversary_menu(seed: u64) -> Vec<Box<dyn Fn() -> Box<dyn Adversary + Send>>> {
        vec![
            Box::new(move || Box::new(RandomScheduler::new(seed)) as Box<dyn Adversary + Send>),
            Box::new(move || {
                Box::new(PctScheduler::new(3, 500, seed)) as Box<dyn Adversary + Send>
            }),
            Box::new(|| Box::new(RoundRobin::new()) as Box<dyn Adversary + Send>),
            Box::new(move || Box::new(SplitKeeper::new(seed)) as Box<dyn Adversary + Send>),
            Box::new(|| Box::new(ImpatienceExploiter::new()) as Box<dyn Adversary + Send>),
        ]
    }

    #[test]
    fn binary_consensus_conforms_across_seeds_and_adversaries() {
        for seed in 0..20 {
            for make in adversary_menu(seed) {
                let outcome = check_conformance(Protocol::Binary, &[0, 1, 1], &make, seed, 100_000)
                    .unwrap_or_else(|d| panic!("seed {seed}: {d}"));
                if let Conformance::Agreed { decisions, .. } = outcome {
                    assert!(decisions.iter().all(|&d| d == decisions[0]));
                }
            }
        }
    }

    #[test]
    fn multivalued_consensus_conforms() {
        for seed in 0..10 {
            for make in adversary_menu(seed) {
                check_conformance(Protocol::Multivalued(5), &[4, 0, 2], &make, seed, 100_000)
                    .unwrap_or_else(|d| panic!("seed {seed}: {d}"));
            }
        }
    }

    #[test]
    fn coin_consensus_conforms_across_seeds_and_adversaries() {
        for seed in 0..8 {
            for make in adversary_menu(seed) {
                let outcome = check_coin_conformance(1, &[0, 1, 1], &make, seed, 200_000)
                    .unwrap_or_else(|d| panic!("seed {seed}: {d}"));
                if let Conformance::Agreed { decisions, .. } = outcome {
                    assert!(decisions.iter().all(|&d| d == decisions[0]));
                }
            }
        }
    }

    #[test]
    fn coin_consensus_unanimous_inputs_conform_on_the_fast_path() {
        for seed in 0..5 {
            for make in adversary_menu(seed) {
                let outcome = check_coin_conformance(1, &[1, 1, 1], &make, seed, 200_000)
                    .unwrap_or_else(|d| panic!("seed {seed}: {d}"));
                let Conformance::Agreed { decisions, .. } = outcome else {
                    panic!("seed {seed}: unanimous run hit the step limit");
                };
                assert_eq!(decisions, vec![1, 1, 1], "seed {seed}");
            }
        }
    }

    #[test]
    fn recycled_coin_object_is_identical_to_fresh() {
        for seed in 0..5 {
            for make in adversary_menu(seed) {
                check_recycled_conformance(
                    Protocol::Coin { quorum_factor: 1 },
                    &[0, 1, 1],
                    &make,
                    seed,
                    200_000,
                )
                .unwrap_or_else(|d| panic!("seed {seed}: {d}"));
            }
        }
    }

    #[test]
    fn empty_fault_plan_is_conformance_identical_to_bare_memory() {
        for seed in 0..10 {
            for make in adversary_menu(seed) {
                let bare = check_conformance(Protocol::Binary, &[0, 1, 1], &make, seed, 100_000)
                    .unwrap_or_else(|d| panic!("bare seed {seed}: {d}"));
                let layered = check_conformance_with_plan(
                    Protocol::Binary,
                    &[0, 1, 1],
                    &make,
                    seed,
                    100_000,
                    FaultPlan::none(),
                )
                .unwrap_or_else(|d| panic!("layered seed {seed}: {d}"));
                assert_eq!(bare, layered, "seed {seed}");
            }
        }
    }

    #[test]
    fn empty_fault_plan_conforms_on_multivalued_too() {
        for seed in 0..5 {
            check_conformance_with_plan(
                Protocol::Multivalued(5),
                &[4, 0, 2],
                &(Box::new(move || Box::new(SplitKeeper::new(seed)) as Box<dyn Adversary + Send>)
                    as Box<dyn Fn() -> Box<dyn Adversary + Send>>),
                seed,
                100_000,
                FaultPlan::none(),
            )
            .unwrap_or_else(|d| panic!("seed {seed}: {d}"));
        }
    }

    #[test]
    fn recycled_binary_object_is_identical_to_fresh() {
        for seed in 0..20 {
            for make in adversary_menu(seed) {
                let outcome =
                    check_recycled_conformance(Protocol::Binary, &[0, 1, 1], &make, seed, 100_000)
                        .unwrap_or_else(|d| panic!("seed {seed}: {d}"));
                if let Conformance::Agreed { decisions, .. } = outcome {
                    assert!(decisions.iter().all(|&d| d == decisions[0]));
                }
            }
        }
    }

    #[test]
    fn recycled_multivalued_object_is_identical_to_fresh() {
        for seed in 0..10 {
            for make in adversary_menu(seed) {
                check_recycled_conformance(
                    Protocol::Multivalued(5),
                    &[4, 0, 2],
                    &make,
                    seed,
                    100_000,
                )
                .unwrap_or_else(|d| panic!("seed {seed}: {d}"));
            }
        }
    }

    #[test]
    fn twice_recycled_object_still_matches_fresh() {
        use mc_sim::adversary::RandomScheduler;

        let seed = 17;
        let mut lab = Lab::new(3, Box::new(RandomScheduler::new(seed)), &[], 100_000);
        let mut consensus = Protocol::Binary.runtime(&lab, 3);
        let mut reports = Vec::new();
        for _ in 0..3 {
            let report = lab
                .run(seed, |pid, rng| consensus.decide(pid as u64 % 2, rng))
                .unwrap();
            reports.push(report);
            consensus.reset();
            lab.reset_epoch(Box::new(RandomScheduler::new(seed)), &[]);
        }
        for epoch in 1..reports.len() {
            assert_eq!(
                reports[0].decisions, reports[epoch].decisions,
                "epoch {epoch}"
            );
            assert_eq!(reports[0].trace, reports[epoch].trace, "epoch {epoch}");
            assert_eq!(reports[0].path, reports[epoch].path, "epoch {epoch}");
            assert_eq!(reports[0].metrics, reports[epoch].metrics, "epoch {epoch}");
        }
    }

    #[test]
    fn service_pipeline_matches_direct_submit_across_seeds() {
        for seed in 0..10 {
            let proposals: Vec<(u64, u64)> =
                (0..64u64).map(|i| (i % 7, (i * 31 + seed) % 5)).collect();
            let decisions = check_service_conformance(Protocol::Multivalued(5), &proposals, seed)
                .unwrap_or_else(|d| panic!("seed {seed}: {d}"));
            // Single-participant instances decide their own proposal, so
            // conformance here is exact and predictable.
            for (ix, &(_, proposal)) in proposals.iter().enumerate() {
                assert_eq!(decisions[ix], proposal, "seed {seed} proposal {ix}");
            }
        }
    }

    #[test]
    fn chaos_conformance_survives_panics_within_budget() {
        // Panic at every drain, up to 3 times: the supervisor re-admits
        // the stash each time and the fourth incarnation decides — still
        // exactly the direct leg's decisions.
        let supervisor = SupervisorOptions {
            restart_budget: 4,
            base_backoff: std::time::Duration::from_micros(50),
            max_backoff: std::time::Duration::from_millis(1),
        };
        for seed in 0..5 {
            let proposals: Vec<(u64, u64)> =
                (0..48u64).map(|i| (i % 5, (i * 13 + seed) % 6)).collect();
            let plan = ChaosPlan::seeded(seed).panic_every(1, 3);
            let decisions = check_chaos_conformance(
                Protocol::Multivalued(6),
                &proposals,
                plan,
                supervisor,
                seed,
            )
            .unwrap_or_else(|d| panic!("seed {seed}: {d}"));
            for (ix, &(_, proposal)) in proposals.iter().enumerate() {
                assert_eq!(decisions[ix], proposal, "seed {seed} proposal {ix}");
            }
        }
    }

    #[test]
    fn chaos_conformance_with_stalls_and_register_faults() {
        // Stalls plus the PR 3 fault layer (lost probabilistic writes and
        // stale reads): decisions cost retries but never change.
        let supervisor = SupervisorOptions {
            restart_budget: 3,
            base_backoff: std::time::Duration::from_micros(50),
            max_backoff: std::time::Duration::from_millis(1),
        };
        let plan = ChaosPlan::seeded(21)
            .panic_every(3, 2)
            .stall_every(2, std::time::Duration::from_micros(200))
            .faults(FaultPlan::seeded(21).lost_prob_writes(0.2).stale_reads(0.2));
        let proposals: Vec<(u64, u64)> = (0..32u64).map(|i| (i % 3, i % 2)).collect();
        let decisions = check_chaos_conformance(Protocol::Binary, &proposals, plan, supervisor, 21)
            .unwrap_or_else(|d| panic!("{d}"));
        assert_eq!(decisions.len(), proposals.len());
    }

    #[test]
    fn chaos_conformance_with_empty_plan_is_plain_service_conformance() {
        let proposals: Vec<(u64, u64)> = (0..16u64).map(|i| (i % 3, i % 2)).collect();
        let chaos = check_chaos_conformance(
            Protocol::Binary,
            &proposals,
            ChaosPlan::none(),
            SupervisorOptions::default(),
            9,
        )
        .unwrap_or_else(|d| panic!("{d}"));
        let plain = check_service_conformance(Protocol::Binary, &proposals, 9)
            .unwrap_or_else(|d| panic!("{d}"));
        assert_eq!(chaos, plain);
    }

    #[test]
    #[should_panic(expected = "exceeds the restart budget")]
    fn chaos_plan_beyond_the_budget_is_refused_up_front() {
        let _ = check_chaos_conformance(
            Protocol::Binary,
            &[(0, 1)],
            ChaosPlan::seeded(1).panic_every(1, 9),
            SupervisorOptions::default(),
            1,
        );
    }

    #[test]
    fn binary_service_conforms_with_repeated_instances() {
        // Repeated instance ids: every submit retires its solo instance, so
        // both legs must agree run-for-run even when ids collide.
        let proposals: Vec<(u64, u64)> = (0..32u64).map(|i| (i % 3, i % 2)).collect();
        let decisions = check_service_conformance(Protocol::Binary, &proposals, 7)
            .unwrap_or_else(|d| panic!("{d}"));
        assert_eq!(decisions.len(), proposals.len());
    }

    #[test]
    fn single_process_fast_path_conforms() {
        let make: Box<dyn Fn() -> Box<dyn Adversary + Send>> =
            Box::new(|| Box::new(RoundRobin::new()) as Box<dyn Adversary + Send>);
        let outcome = check_conformance(Protocol::Binary, &[1], &make, 0, 1_000).unwrap();
        assert!(matches!(
            outcome,
            Conformance::Agreed { ref decisions, .. } if decisions == &[1]
        ));
    }
}
