//! Running real threads under the lab controller.

use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Once};
use std::thread;

use mc_check::PathEvent;
use mc_model::ProcessId;
use mc_sim::adversary::CrashingAdversary;
use mc_sim::{mix_seed, Adversary, Trace, WorkMetrics};
use rand::rngs::SmallRng;
use rand::SeedableRng;

pub use crate::control::LabError;
use crate::control::{set_current_pid, Interrupted, LabController, LabMemory};

/// Everything a completed lab run produced.
#[derive(Debug)]
pub struct LabReport {
    /// Per-process return value of the algorithm body; `None` for processes
    /// that crashed (were never scheduled past their crash step).
    pub decisions: Vec<Option<u64>>,
    /// Processes that were configured to crash.
    pub crashed: Vec<ProcessId>,
    /// Work accounting, field-compatible with `mc-sim`'s.
    pub metrics: WorkMetrics,
    /// The executed operations, in schedule order, in `mc-sim`'s trace
    /// vocabulary.
    pub trace: Trace,
    /// The schedule/coin script in `mc-check`'s replay vocabulary: feed it
    /// to [`mc_check::replay_to_completion`] to re-execute the identical
    /// interleaving on the model.
    pub path: Vec<PathEvent>,
}

/// One configured deterministic lab run.
///
/// ```
/// use mc_lab::Lab;
/// use mc_runtime::Consensus;
/// use mc_sim::adversary::RandomScheduler;
///
/// let lab = Lab::new(2, Box::new(RandomScheduler::new(7)), &[], 10_000);
/// let consensus = Consensus::builder().n(2).memory(lab.memory()).build();
/// let report = lab
///     .run(7, |pid, rng| consensus.decide(pid as u64 % 2, rng))
///     .unwrap();
/// let d0 = report.decisions[0].unwrap();
/// assert_eq!(report.decisions[1], Some(d0));
/// ```
#[derive(Debug)]
pub struct Lab {
    ctrl: Arc<LabController>,
    crashed: Vec<ProcessId>,
}

impl Lab {
    /// Configures a lab for `n` real threads scheduled by `adversary`.
    ///
    /// Each `(pid, step)` in `crashes` halts that process permanently once
    /// the global step count reaches `step` (the adversary simply never
    /// schedules it again). `max_steps` bounds the run; exceeding it yields
    /// [`LabError::StepLimitExceeded`].
    pub fn new(
        n: usize,
        adversary: Box<dyn Adversary + Send>,
        crashes: &[(ProcessId, u64)],
        max_steps: u64,
    ) -> Lab {
        let crashed: Vec<ProcessId> = crashes.iter().map(|&(pid, _)| pid).collect();
        for pid in &crashed {
            assert!(pid.index() < n, "crash target {pid} out of range");
        }
        assert!(
            crashed.len() < n,
            "at least one process must survive the crash plan"
        );
        let adversary: Box<dyn Adversary + Send> = if crashes.is_empty() {
            adversary
        } else {
            Box::new(CrashingAdversary::new(adversary, crashes.iter().copied()))
        };
        Lab {
            ctrl: LabController::new(n, adversary, &crashed, max_steps),
            crashed,
        }
    }

    /// Configures a lab that replays an `mc-check` counterexample script
    /// through real runtime objects: [`PathEvent::Sched`] events drive a
    /// [`ScriptedAdversary`] and [`PathEvent::Coin`] events pre-resolve the
    /// probabilistic writes, in schedule order.
    ///
    /// Past the end of the script both fall back to their defaults
    /// (round-robin scheduling, the worker's own rng), so a run whose
    /// script stops at the violating step still drains cleanly; the
    /// violation the checker found is visible in the returned
    /// [`LabReport::decisions`].
    ///
    /// [`ScriptedAdversary`]: mc_sim::adversary::ScriptedAdversary
    pub fn replay(n: usize, script: &[PathEvent], max_steps: u64) -> Lab {
        let mut pids = Vec::new();
        let mut coins = Vec::new();
        for event in script {
            match event {
                PathEvent::Sched(pid) => pids.push(*pid),
                PathEvent::Coin(outcome) => coins.push(*outcome),
            }
        }
        let lab = Lab::new(
            n,
            Box::new(mc_sim::adversary::ScriptedAdversary::new(pids)),
            &[],
            max_steps,
        );
        lab.ctrl.force_coins(coins);
        lab
    }

    /// The instrumented memory: pass it to an `mc-runtime` object's `*_in`
    /// constructor *before* calling [`run`](Lab::run). Register allocation
    /// does not yield, so construction is safe outside worker threads.
    pub fn memory(&self) -> LabMemory {
        LabMemory::new(Arc::clone(&self.ctrl))
    }

    /// Rearms this lab for another run over the *same* register file:
    /// register ids (and the allocation high-water mark) survive, so pooled
    /// objects built on [`memory`](Lab::memory) keep working after a
    /// `reset`, while the mirror memory, schedule state, trace, path, and
    /// work metrics start over as if the lab were newly built.
    ///
    /// This is the recycled-vs-fresh conformance primitive: reset the
    /// object, `reset_epoch` with an identically-seeded adversary, rerun —
    /// the two reports must be identical in every observable.
    ///
    /// # Panics
    ///
    /// Panics if a run is in progress, or if a crash target is out of range,
    /// or if no process survives the crash plan.
    pub fn reset_epoch(
        &mut self,
        adversary: Box<dyn Adversary + Send>,
        crashes: &[(ProcessId, u64)],
    ) {
        let n = self.ctrl.n();
        let crashed: Vec<ProcessId> = crashes.iter().map(|&(pid, _)| pid).collect();
        for pid in &crashed {
            assert!(pid.index() < n, "crash target {pid} out of range");
        }
        assert!(
            crashed.len() < n,
            "at least one process must survive the crash plan"
        );
        let adversary: Box<dyn Adversary + Send> = if crashes.is_empty() {
            adversary
        } else {
            Box::new(CrashingAdversary::new(adversary, crashes.iter().copied()))
        };
        let doomed: Vec<usize> = crashed.iter().map(|pid| pid.index()).collect();
        self.ctrl.reset_epoch(adversary, &doomed);
        self.crashed = crashed;
    }

    /// Runs `body(pid, rng)` on `n` real threads under the adversary's
    /// schedule and collects the full report.
    ///
    /// Each process's rng is seeded from `mix_seed(seed, pid)` — exactly
    /// how `mc-sim`'s engine seeds its per-process coin streams — and in a
    /// lab run only probabilistic writes consume it, so the coin sequences
    /// of the two substrates stay aligned.
    ///
    /// A lab is single-shot per epoch: to run again on the same register
    /// file, call [`reset_epoch`](Lab::reset_epoch) first.
    pub fn run(
        &self,
        seed: u64,
        body: impl Fn(usize, &mut SmallRng) -> u64 + Sync,
    ) -> Result<LabReport, LabError> {
        install_quiet_hook();
        let n = self.ctrl.n();
        let ctrl = &self.ctrl;
        let body = &body;
        let decisions: Vec<Option<u64>> = thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|pid| {
                    scope.spawn(move || {
                        set_current_pid(Some(pid));
                        let mut rng = SmallRng::seed_from_u64(mix_seed(seed, pid as u64));
                        let result = panic::catch_unwind(AssertUnwindSafe(|| body(pid, &mut rng)));
                        set_current_pid(None);
                        match result {
                            Ok(value) => {
                                ctrl.finish(pid);
                                Some(value)
                            }
                            Err(payload) if payload.downcast_ref::<Interrupted>().is_some() => None,
                            Err(payload) => {
                                // A real failure: release every peer blocked
                                // in the rendezvous, then let it propagate.
                                ctrl.abort();
                                panic::resume_unwind(payload);
                            }
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| match handle.join() {
                    Ok(decision) => decision,
                    Err(payload) => panic::resume_unwind(payload),
                })
                .collect()
        });
        let (metrics, trace, path, error) = self.ctrl.take_results();
        if let Some(error) = error {
            return Err(error);
        }
        Ok(LabReport {
            decisions,
            crashed: self.crashed.clone(),
            metrics,
            trace,
            path,
        })
    }
}

/// Suppresses panic-hook noise for the private `Interrupted` unwinds used
/// to retire doomed workers; every other panic still reaches the previous
/// hook. Installed once per process, chained onto whatever was there.
fn install_quiet_hook() {
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<Interrupted>().is_none() {
                previous(info);
            }
        }));
    });
}
