//! # mc-lab — a deterministic interleaving lab for the real-thread runtime
//!
//! `mc-runtime` runs the paper's protocols on real threads over real atomic
//! registers — which makes its interleavings whatever the OS scheduler
//! happens to produce. This crate closes that gap: it runs the *same*
//! runtime objects (same `Consensus`, same `AtomicRatifier`, same code
//! paths) with their registers swapped for an instrumented substrate in
//! which **every** load, store, and probabilistic write is a yield point
//! controlled by a seeded adversarial scheduler.
//!
//! Concretely, [`Lab`] spawns one real thread per process. A thread that
//! touches a [`LabRegister`] posts the operation and blocks; once every
//! unfinished thread has posted, an [`mc_sim::Adversary`] — the *same*
//! adversary trait the simulator uses, including the attacker heuristics
//! and the PCT scheduler in `mc_sim::sched` — picks which operation commits
//! next. Exactly one thread runs at a time, so the interleaving is a pure
//! function of (adversary, seed), and re-running reproduces it bit for bit.
//!
//! Three things fall out of this design:
//!
//! * **Determinism for real code.** Crash injection ([`Lab::new`]'s crash
//!   plan) and stall injection ([`StallingAdversary`]) apply to actual
//!   runtime threads, reproducibly.
//! * **Cross-substrate conformance.** A lab run draws its coins exactly the
//!   way the sim engine does (per-process `mix_seed(seed, pid)` streams)
//!   and observes the adversary through identical views, so
//!   [`check_conformance`] can demand the sim engine and the lab runtime
//!   produce *equal* traces, decisions, and work accounting — and then
//!   replay the lab's recorded script through `mc-check` to pull the
//!   exhaustive checker into agreement too.
//! * **A falsifiable lab.** [`RacyConsensus`] is a deliberately broken toy
//!   protocol; the lab's schedulers must (and do) find the interleaving
//!   that violates agreement. A green conformance suite is only evidence
//!   because this negative control stays red.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conform;
mod control;
mod harness;
pub mod inject;
pub mod toy;

pub use conform::{
    check_chaos_conformance, check_coin_conformance, check_conformance,
    check_conformance_with_plan, check_recycled_conformance, check_service_conformance,
    check_store_conformance, Conformance, Divergence, Protocol,
};
pub use control::{LabError, LabMemory, LabRegister};
pub use harness::{Lab, LabReport};
pub use inject::StallingAdversary;
pub use toy::{RacyConsensus, RacySpec};

#[cfg(test)]
mod tests {
    use super::*;
    use mc_model::ProcessId;
    use mc_runtime::Consensus;
    use mc_sim::adversary::{RandomScheduler, RoundRobin};
    use mc_sim::sched::PctScheduler;
    use mc_sim::Adversary;

    fn adversaries(seed: u64) -> Vec<Box<dyn Adversary + Send>> {
        vec![
            Box::new(RandomScheduler::new(seed)),
            Box::new(PctScheduler::new(3, 200, seed)),
            Box::new(RoundRobin::new()),
        ]
    }

    #[test]
    fn lab_consensus_decides_and_agrees() {
        for adversary in adversaries(11) {
            let lab = Lab::new(3, adversary, &[], 50_000);
            let consensus = Consensus::builder().n(3).memory(lab.memory()).build();
            let report = lab
                .run(11, |pid, rng| consensus.decide(pid as u64 % 2, rng))
                .unwrap();
            let first = report.decisions[0].unwrap();
            assert!(first < 2);
            for d in &report.decisions {
                assert_eq!(*d, Some(first));
            }
            assert!(!report.trace.is_empty());
            assert!(!report.path.is_empty());
            assert!(report.metrics.total_work() > 0);
        }
    }

    #[test]
    fn same_seed_reproduces_the_exact_run() {
        let run = |seed: u64| {
            let lab = Lab::new(3, Box::new(RandomScheduler::new(seed)), &[], 50_000);
            let consensus = Consensus::builder().n(3).memory(lab.memory()).build();
            lab.run(seed, |pid, rng| consensus.decide(pid as u64 % 2, rng))
                .unwrap()
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.path, b.path);
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn crashed_process_never_decides_but_survivors_agree() {
        let lab = Lab::new(
            3,
            Box::new(RandomScheduler::new(5)),
            &[(ProcessId(2), 4)],
            50_000,
        );
        let consensus = Consensus::builder().n(3).memory(lab.memory()).build();
        let report = lab
            .run(5, |pid, rng| consensus.decide(pid as u64 % 2, rng))
            .unwrap();
        assert_eq!(report.decisions[2], None);
        assert_eq!(report.crashed, vec![ProcessId(2)]);
        let d0 = report.decisions[0].unwrap();
        assert_eq!(report.decisions[1], Some(d0));
        // The crashed process took at most its pre-crash steps.
        assert!(report.metrics.per_process[2] <= 4);
    }

    #[test]
    fn stalled_process_still_decides() {
        let inner = RandomScheduler::new(9);
        let adversary = StallingAdversary::new(inner, [(ProcessId(0), 30)]);
        let lab = Lab::new(2, Box::new(adversary), &[], 50_000);
        let consensus = Consensus::builder().n(2).memory(lab.memory()).build();
        let report = lab
            .run(9, |pid, rng| consensus.decide(pid as u64, rng))
            .unwrap();
        let d0 = report.decisions[0].unwrap();
        assert_eq!(report.decisions[1], Some(d0));
    }

    #[test]
    fn faulty_memory_over_lab_memory_is_deterministic_and_safe() {
        use mc_runtime::{BoundedConsensus, FaultPlan, FaultyMemory};

        let run = |seed: u64| {
            let lab = Lab::new(3, Box::new(RandomScheduler::new(seed)), &[], 400_000);
            let plan = FaultPlan::seeded(seed)
                .lost_prob_writes(0.4)
                .stale_reads(0.3)
                .delayed_writes(0.2, 3)
                .register_resets(0.02);
            let memory = FaultyMemory::new(lab.memory(), plan);
            let counts = memory.clone();
            let consensus = BoundedConsensus::binary_in(memory, 3);
            let report = lab
                .run(seed, |pid, rng| consensus.decide(pid, pid as u64 % 2, rng))
                .expect("bounded consensus must terminate under faults");
            (report, counts.fault_counts())
        };
        for seed in [2, 13, 31] {
            let (report, counts) = run(seed);
            let first = report.decisions[0].expect("decided");
            assert!(first < 2, "validity under faults");
            assert!(
                report.decisions.iter().all(|&d| d == Some(first)),
                "agreement under faults: {:?}",
                report.decisions
            );
            // Same (adversary, seed, plan) ⇒ bit-identical run, faults and
            // all: fault decisions land in each thread's exclusive
            // scheduling window.
            let (replay, replay_counts) = run(seed);
            assert_eq!(report.decisions, replay.decisions);
            assert_eq!(report.trace, replay.trace);
            assert_eq!(report.path, replay.path);
            assert_eq!(counts, replay_counts);
        }
    }

    #[test]
    fn recycled_typed_consensus_matches_fresh_on_lab_memory() {
        use mc_runtime::TypedConsensus;
        use mc_sim::adversary::RandomScheduler;

        // Non-trivial payloads through a reset instance: the recycled run
        // at the same (adversary, seed) must reproduce the fresh run's
        // decisions, trace, schedule script, and register accounting
        // (same register ids ⇒ same registers_allocated/touched).
        for seed in [3, 19, 57] {
            let mut lab = Lab::new(3, Box::new(RandomScheduler::new(seed)), &[], 100_000);
            let mut typed = TypedConsensus::<u16, LabMemory>::new_in(lab.memory(), 3);
            let proposals: [u16; 3] = [0xBEEF, 0x0042, 0x7FFF];
            let run = |lab: &Lab, typed: &TypedConsensus<u16, LabMemory>| {
                lab.run(seed, |pid, rng| {
                    u64::from(typed.decide(proposals[pid], rng))
                })
                .unwrap()
            };
            let fresh = run(&lab, &typed);
            typed.reset();
            lab.reset_epoch(Box::new(RandomScheduler::new(seed)), &[]);
            let recycled = run(&lab, &typed);
            assert_eq!(fresh.decisions, recycled.decisions, "seed {seed}");
            assert_eq!(fresh.trace, recycled.trace, "seed {seed}");
            assert_eq!(fresh.path, recycled.path, "seed {seed}");
            assert_eq!(fresh.metrics, recycled.metrics, "seed {seed}");
            let decided = fresh.decisions[0].unwrap() as u16;
            assert!(proposals.contains(&decided), "seed {seed}: validity");
        }
    }

    #[test]
    fn step_limit_is_reported() {
        let lab = Lab::new(2, Box::new(RandomScheduler::new(1)), &[], 3);
        let consensus = Consensus::builder().n(2).memory(lab.memory()).build();
        let err = lab
            .run(1, |pid, rng| consensus.decide(pid as u64, rng))
            .unwrap_err();
        assert_eq!(err, LabError::StepLimitExceeded { limit: 3 });
    }

    #[test]
    fn negative_control_racy_protocol_is_caught() {
        // The broken toy protocol must fail agreement under *some* seeded
        // schedule; if no scheduler can exhibit the race, the lab is not
        // actually exploring interleavings.
        let mut caught = false;
        'outer: for seed in 0..64 {
            for adversary in adversaries(seed) {
                let lab = Lab::new(2, adversary, &[], 10_000);
                let racy = RacyConsensus::new_in(&lab.memory());
                let report = lab.run(seed, |pid, _| racy.decide(pid as u64)).unwrap();
                if report.decisions[0] != report.decisions[1] {
                    caught = true;
                    break 'outer;
                }
            }
        }
        assert!(caught, "no schedule exhibited the agreement violation");
    }

    #[test]
    fn store_conforms_to_sequential_apply_on_fixed_seeds() {
        // Interleaved sessions, duplicate re-delivery, stale probes, final
        // state — all against the bare-machine oracle, on pinned seeds
        // with single- and multi-sequencer stores.
        for (seed, sequencers) in [(5u64, 1usize), (23, 2), (71, 3)] {
            let applied = check_store_conformance(4, 24, sequencers, seed)
                .unwrap_or_else(|d| panic!("seed {seed}, {sequencers} sequencers: {d}"));
            assert_eq!(applied, 4 * 24, "every distinct command applies once");
        }
    }

    #[test]
    fn real_worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            let lab = Lab::new(2, Box::new(RandomScheduler::new(3)), &[], 10_000);
            let consensus = Consensus::builder().n(2).memory(lab.memory()).build();
            lab.run(3, |pid, rng| {
                if pid == 1 {
                    panic!("worker bug");
                }
                consensus.decide(0, rng)
            })
        });
        assert!(result.is_err());
    }
}
