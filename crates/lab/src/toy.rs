//! A deliberately broken toy protocol: the lab's negative control.
//!
//! If the lab could not catch *this*, its green conformance runs would
//! mean nothing. [`RacyConsensus`] has a textbook check-then-act race:
//! under a sequential schedule it agrees, but an adversary that interleaves
//! the initial reads makes two processes decide different values. The test
//! suite asserts the lab finds such a schedule.

use mc_runtime::{AtomicMemory, SharedMemory, SharedRegister};

/// "Consensus" by unsynchronized check-then-act on one register: read, and
/// if empty, write your own value and decide it. Two processes that both
/// read empty both decide their own values — an agreement violation the
/// lab's schedulers must be able to exhibit.
#[derive(Debug)]
pub struct RacyConsensus<M: SharedMemory = AtomicMemory> {
    reg: M::Reg,
}

impl RacyConsensus {
    /// A racy object over plain atomics.
    pub fn new() -> RacyConsensus {
        RacyConsensus::new_in(&AtomicMemory)
    }
}

impl Default for RacyConsensus {
    fn default() -> RacyConsensus {
        RacyConsensus::new()
    }
}

impl<M: SharedMemory> RacyConsensus<M> {
    /// A racy object whose register lives in `memory`.
    pub fn new_in(memory: &M) -> RacyConsensus<M> {
        RacyConsensus {
            reg: memory.alloc(),
        }
    }

    /// The broken decision procedure.
    pub fn decide(&self, value: u64) -> u64 {
        match self.reg.read() {
            Some(winner) => winner,
            None => {
                // The race: another process can read the same emptiness
                // before this write lands.
                self.reg.write(value);
                value
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_use_agrees() {
        let racy = RacyConsensus::new();
        assert_eq!(racy.decide(7), 7);
        assert_eq!(racy.decide(9), 7);
    }
}
