//! A deliberately broken toy protocol: the lab's negative control.
//!
//! If the lab could not catch *this*, its green conformance runs would
//! mean nothing. [`RacyConsensus`] has a textbook check-then-act race:
//! under a sequential schedule it agrees, but an adversary that interleaves
//! the initial reads makes two processes decide different values. The test
//! suite asserts the lab finds such a schedule.

use std::sync::Arc;

use mc_model::{
    Action, Ctx, DecidingObject, Decision, InstantiateCtx, ObjectSpec, Op, ProcessId, RegisterId,
    Response, Session, StateSink, SymmetrySpec, Value,
};
use mc_runtime::{AtomicMemory, SharedMemory, SharedRegister};

/// "Consensus" by unsynchronized check-then-act on one register: read, and
/// if empty, write your own value and decide it. Two processes that both
/// read empty both decide their own values — an agreement violation the
/// lab's schedulers must be able to exhibit.
#[derive(Debug)]
pub struct RacyConsensus<M: SharedMemory = AtomicMemory> {
    reg: M::Reg,
}

impl RacyConsensus {
    /// A racy object over plain atomics.
    pub fn new() -> RacyConsensus {
        RacyConsensus::new_in(&AtomicMemory)
    }
}

impl Default for RacyConsensus {
    fn default() -> RacyConsensus {
        RacyConsensus::new()
    }
}

impl<M: SharedMemory> RacyConsensus<M> {
    /// A racy object whose register lives in `memory`.
    pub fn new_in(memory: &M) -> RacyConsensus<M> {
        RacyConsensus {
            reg: memory.alloc(),
        }
    }

    /// The broken decision procedure.
    pub fn decide(&self, value: u64) -> u64 {
        match self.reg.read() {
            Some(winner) => winner,
            None => {
                // The race: another process can read the same emptiness
                // before this write lands.
                self.reg.write(value);
                value
            }
        }
    }
}

/// The model twin of [`RacyConsensus`]: the same broken check-then-act
/// protocol as an [`ObjectSpec`], op for op — read the register, adopt a
/// winner if present, otherwise write your own value and decide it.
///
/// Because the two are operation-identical, a violating schedule found by
/// `mc-check`'s exhaustive engines on `RacySpec` replays through the real
/// [`RacyConsensus`] (via [`Lab::replay`](crate::Lab::replay)) to the very
/// same disagreement — the lab's end-to-end negative control.
#[derive(Debug, Clone, Copy, Default)]
pub struct RacySpec;

impl RacySpec {
    /// Creates the broken spec.
    pub fn new() -> RacySpec {
        RacySpec
    }
}

struct RacyObject {
    reg: RegisterId,
}

impl DecidingObject for RacyObject {
    fn session(&self, _pid: ProcessId) -> Box<dyn Session + Send> {
        Box::new(RacySession {
            reg: self.reg,
            input: 0,
            wrote: false,
        })
    }

    fn symmetry(&self) -> SymmetrySpec {
        SymmetrySpec {
            pid_oblivious: true,
            value_symmetric: true,
            value_registers: vec![(self.reg, 1)],
            ..SymmetrySpec::default()
        }
    }
}

struct RacySession {
    reg: RegisterId,
    input: Value,
    wrote: bool,
}

impl Session for RacySession {
    fn begin(&mut self, input: Value, _ctx: &mut Ctx<'_>) -> Action {
        self.input = input;
        Action::Invoke(Op::Read(self.reg))
    }

    fn poll(&mut self, response: Response, _ctx: &mut Ctx<'_>) -> Action {
        if self.wrote {
            debug_assert!(matches!(response, Response::Write));
            return Action::Halt(Decision::decide(self.input));
        }
        match response.expect_read() {
            Some(winner) => Action::Halt(Decision::decide(winner)),
            None => {
                // The race, exactly as in the runtime object: the emptiness
                // check and the write are separate operations.
                self.wrote = true;
                Action::Invoke(Op::Write {
                    reg: self.reg,
                    value: self.input,
                })
            }
        }
    }

    fn snapshot(&self, sink: &mut StateSink) {
        sink.push_raw(u64::from(self.wrote));
        sink.push_value(self.input);
    }
}

impl ObjectSpec for RacySpec {
    fn instantiate(&self, ctx: &mut InstantiateCtx<'_>) -> Arc<dyn DecidingObject> {
        Arc::new(RacyObject {
            reg: ctx.alloc.alloc_block(1),
        })
    }

    fn name(&self) -> String {
        "racy(check-then-act)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_use_agrees() {
        let racy = RacyConsensus::new();
        assert_eq!(racy.decide(7), 7);
        assert_eq!(racy.decide(9), 7);
    }

    #[test]
    fn spec_sequential_schedule_agrees() {
        use mc_sim::adversary::RoundRobin;
        use mc_sim::harness::{self, inputs};
        use mc_sim::EngineConfig;

        // Unanimous inputs cannot disagree even through the race.
        let out = harness::run_object(
            &RacySpec::new(),
            &inputs::unanimous(3, 4),
            &mut RoundRobin::new(),
            0,
            &EngineConfig::default(),
        )
        .unwrap();
        assert!(out.outputs.iter().all(|d| d.is_decided() && d.value() == 4));
    }
}
