//! Fault injection layered over any adversary.
//!
//! Crash injection reuses `mc-sim`'s [`CrashingAdversary`](mc_sim::adversary::CrashingAdversary) (the lab wraps
//! it automatically; see [`Lab::new`](crate::Lab::new)). This module adds
//! *stalls*: a process is held back until a release step, then rejoins —
//! modelling a thread descheduled by the OS rather than one that died.

use std::collections::HashMap;

use mc_model::ProcessId;
use mc_sim::{Adversary, Capability, View};

/// Delays chosen processes until a release step, delegating every actual
/// choice to the inner adversary.
///
/// While a stalled process has the only pending operation, the stall is
/// ignored for that choice — the schedule must stay live, mirroring how a
/// real scheduler cannot hold back the last runnable thread forever.
#[derive(Debug)]
pub struct StallingAdversary<A> {
    inner: A,
    stalls: HashMap<ProcessId, u64>,
}

impl<A: Adversary> StallingAdversary<A> {
    /// Wraps `inner`; each `(pid, release_step)` keeps `pid` unscheduled
    /// until the global step count reaches `release_step`.
    pub fn new(
        inner: A,
        stalls: impl IntoIterator<Item = (ProcessId, u64)>,
    ) -> StallingAdversary<A> {
        StallingAdversary {
            inner,
            stalls: stalls.into_iter().collect(),
        }
    }
}

impl<A: Adversary> Adversary for StallingAdversary<A> {
    fn capability(&self) -> Capability {
        self.inner.capability()
    }

    fn choose(&mut self, view: &View<'_>) -> ProcessId {
        let released: Vec<_> = view
            .pending
            .iter()
            .filter(|info| {
                self.stalls
                    .get(&info.pid)
                    .is_none_or(|&release| view.step >= release)
            })
            .cloned()
            .collect();
        if released.is_empty() {
            // Every pending process is stalled: let the stall lapse rather
            // than wedge the run.
            return self.inner.choose(view);
        }
        let filtered = View {
            step: view.step,
            n: view.n,
            pending: &released,
            memory: view.memory,
        };
        self.inner.choose(&filtered)
    }

    fn name(&self) -> String {
        format!("stalling({})", self.inner.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_model::{Op, RegisterId};
    use mc_sim::observe_pending;

    struct FirstPending;

    impl Adversary for FirstPending {
        fn capability(&self) -> Capability {
            Capability::Oblivious
        }

        fn choose(&mut self, view: &View<'_>) -> ProcessId {
            view.pending[0].pid
        }
    }

    fn view_of(pids: &[usize]) -> Vec<mc_sim::PendingInfo> {
        pids.iter()
            .map(|&p| {
                observe_pending(
                    ProcessId(p),
                    0,
                    &Op::Read(RegisterId(0)),
                    Capability::Oblivious,
                )
            })
            .collect()
    }

    #[test]
    fn stalled_process_is_skipped_until_release() {
        let mut adv = StallingAdversary::new(FirstPending, [(ProcessId(0), 5)]);
        let infos = view_of(&[0, 1]);
        let view = View {
            step: 0,
            n: 2,
            pending: &infos,
            memory: None,
        };
        assert_eq!(adv.choose(&view), ProcessId(1));
        let view = View {
            step: 5,
            n: 2,
            pending: &infos,
            memory: None,
        };
        assert_eq!(adv.choose(&view), ProcessId(0));
    }

    #[test]
    fn stall_lapses_when_it_would_empty_the_schedule() {
        let mut adv = StallingAdversary::new(FirstPending, [(ProcessId(0), 100)]);
        let infos = view_of(&[0]);
        let view = View {
            step: 0,
            n: 1,
            pending: &infos,
            memory: None,
        };
        assert_eq!(adv.choose(&view), ProcessId(0));
    }

    // Liveness regression for the all-stalled lapse path at the Lab
    // level: when *every* pending process is stalled past the horizon,
    // `choose` must fall through to the inner adversary on every step,
    // and the run must still terminate.
    #[test]
    fn all_stalled_run_still_terminates_under_the_lab() {
        use crate::Lab;
        use mc_runtime::Consensus;
        use mc_sim::adversary::RandomScheduler;

        let run = |seed: u64| {
            // Release steps far beyond the step limit: the stalls never
            // expire, so every single scheduling choice takes the lapse
            // branch.
            let stalls = (0..3).map(|p| (ProcessId(p), u64::MAX));
            let adversary = StallingAdversary::new(RandomScheduler::new(seed), stalls);
            let lab = Lab::new(3, Box::new(adversary), &[], 50_000);
            let consensus = Consensus::builder().n(3).memory(lab.memory()).build();
            lab.run(seed, |pid, rng| consensus.decide(pid as u64 % 2, rng))
                .expect("all-stalled run must stay live, not wedge")
        };
        for seed in [3, 17, 29] {
            let report = run(seed);
            let first = report.decisions[0].expect("decided");
            assert!(first < 2, "validity");
            assert!(
                report.decisions.iter().all(|&d| d == Some(first)),
                "agreement: {:?}",
                report.decisions
            );
            // Seed replay: the lapse path is deterministic too.
            let replay = run(seed);
            assert_eq!(report.decisions, replay.decisions);
            assert_eq!(report.trace, replay.trace);
            assert_eq!(report.path, replay.path);
            assert_eq!(report.metrics, replay.metrics);
        }
    }
}
