//! The cooperative scheduling controller and the instrumented
//! [`SharedMemory`] backend.
//!
//! Every register operation the runtime performs on a [`LabRegister`] is a
//! yield point: the calling thread posts the operation and blocks until the
//! controller grants it. The controller grants only when *every* unfinished
//! thread has posted — at that point the full set of pending operations is
//! known, an [`Adversary`] picks one, and exactly that thread proceeds. The
//! result is a real-thread execution whose interleaving is a pure function
//! of the adversary and its seed, with the same rendezvous structure as
//! `mc-sim`'s engine loop.

use std::cell::Cell;
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use mc_check::PathEvent;
use mc_model::{Op, ProcessId, RegisterId};
use mc_runtime::{SharedMemory, SharedRegister};
use mc_sim::{observe_pending, Adversary, Capability, Event, Memory, Trace, View, WorkMetrics};
use rand::{Rng, RngExt};

thread_local! {
    static CURRENT_PID: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Payload of the panic used to unwind a worker thread the lab will never
/// schedule again (crashed, or the run terminated). Private: the harness
/// catches it; anything else propagates as a real failure.
pub(crate) struct Interrupted;

pub(crate) fn set_current_pid(pid: Option<usize>) {
    CURRENT_PID.with(|c| c.set(pid));
}

fn current_pid() -> usize {
    CURRENT_PID.with(|c| c.get()).expect(
        "lab register used outside a lab worker thread; \
         run the algorithm through Lab::run",
    )
}

/// Why a lab run could not be completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LabError {
    /// The configured step limit was reached before the survivors halted.
    StepLimitExceeded {
        /// The limit that was hit.
        limit: u64,
    },
    /// The adversary chose a process with no pending operation.
    AdversaryChoseInvalid {
        /// The invalid choice.
        pid: ProcessId,
    },
}

impl fmt::Display for LabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabError::StepLimitExceeded { limit } => {
                write!(f, "lab run exceeded the step limit of {limit}")
            }
            LabError::AdversaryChoseInvalid { pid } => {
                write!(f, "adversary chose process {pid} with no pending operation")
            }
        }
    }
}

impl Error for LabError {}

struct LabState {
    adversary: Box<dyn Adversary + Send>,
    /// Posted-but-not-executed operation per process.
    pending: Vec<Option<Op>>,
    ops_done: Vec<u64>,
    finished: Vec<bool>,
    doomed: Vec<bool>,
    /// The process currently allowed to execute its pending operation.
    granted: Option<usize>,
    /// Mirror register file: ops apply here under the lock, giving the
    /// interleaving semantics of the model (and adversary memory views).
    memory: Memory,
    next_reg: u64,
    step: u64,
    unfinished: usize,
    metrics: WorkMetrics,
    trace: Trace,
    path: Vec<PathEvent>,
    /// Scripted coin outcomes for counterexample replay: while non-empty,
    /// each genuinely probabilistic write (`0 < p < 1`) pops its outcome
    /// from here instead of drawing from the worker's rng.
    forced_coins: VecDeque<bool>,
    terminated: bool,
    error: Option<LabError>,
}

pub(crate) enum Outcome {
    Read(Option<u64>),
    Write,
    Prob(bool),
}

/// Serializes every register operation of a lab run and delegates each
/// scheduling choice to the adversary.
pub(crate) struct LabController {
    n: usize,
    max_steps: u64,
    state: Mutex<LabState>,
    cv: Condvar,
}

impl LabController {
    pub(crate) fn new(
        n: usize,
        adversary: Box<dyn Adversary + Send>,
        doomed_pids: &[ProcessId],
        max_steps: u64,
    ) -> Arc<LabController> {
        assert!(n > 0, "need at least one process");
        let mut doomed = vec![false; n];
        for pid in doomed_pids {
            doomed[pid.index()] = true;
        }
        Arc::new(LabController {
            n,
            max_steps,
            state: Mutex::new(LabState {
                adversary,
                pending: vec![None; n],
                ops_done: vec![0; n],
                finished: vec![false; n],
                doomed,
                granted: None,
                memory: Memory::new(),
                next_reg: 0,
                step: 0,
                unfinished: n,
                metrics: WorkMetrics::new(n),
                trace: Trace::new(),
                path: Vec::new(),
                forced_coins: VecDeque::new(),
                terminated: false,
                error: None,
            }),
            cv: Condvar::new(),
        })
    }

    pub(crate) fn n(&self) -> usize {
        self.n
    }

    fn lock(&self) -> MutexGuard<'_, LabState> {
        // A worker that panics mid-operation poisons the mutex; the state is
        // still consistent (every mutation completes under one lock hold),
        // so recover and keep going.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub(crate) fn alloc(&self) -> RegisterId {
        let mut state = self.lock();
        let id = RegisterId(state.next_reg);
        state.next_reg += 1;
        state.metrics.registers_allocated = state.next_reg;
        id
    }

    /// Clears a retired register's mirror cell. Like allocation, retirement
    /// is not an operation in the model (it happens between instances, with
    /// exclusive access to the register), so it does not yield.
    pub(crate) fn retire(&self, reg: RegisterId) {
        let mut state = self.lock();
        state.memory.clear_register(reg);
    }

    /// Rearms the controller for a fresh run ("epoch") over the *same*
    /// register file identity: register ids and the allocation high-water
    /// mark survive — pooled objects keep their `LabRegister`s — while every
    /// piece of per-run state (mirror memory, schedule, trace, path, work
    /// metrics, crash bookkeeping) is reset as if the lab were newly built.
    ///
    /// The fresh epoch's `registers_allocated` is pre-charged with the
    /// existing high-water mark: a recycled run materializes no new
    /// registers, and this is exactly the count a fresh-object run at the
    /// same (adversary, seed) reports after its own allocations.
    ///
    /// # Panics
    ///
    /// Panics if called while a run is in progress.
    pub(crate) fn reset_epoch(&self, adversary: Box<dyn Adversary + Send>, doomed_pids: &[usize]) {
        let mut state = self.lock();
        assert!(
            state.pending.iter().all(Option::is_none) && state.granted.is_none(),
            "reset_epoch during a run"
        );
        let n = self.n;
        state.adversary = adversary;
        state.pending = vec![None; n];
        state.ops_done = vec![0; n];
        state.finished = vec![false; n];
        state.doomed = {
            let mut doomed = vec![false; n];
            for &pid in doomed_pids {
                doomed[pid] = true;
            }
            doomed
        };
        state.granted = None;
        state.memory = Memory::new();
        state.step = 0;
        state.unfinished = n;
        state.metrics = WorkMetrics::new(n);
        state.metrics.registers_allocated = state.next_reg;
        state.trace = Trace::new();
        state.path = Vec::new();
        state.forced_coins = VecDeque::new();
        state.terminated = false;
        state.error = None;
    }

    /// Queues coin outcomes for replay; consumed in schedule order by the
    /// probabilistic writes of the next run. Exhausting the queue falls
    /// back to the worker's rng (mirroring [`ScriptedAdversary`]'s
    /// round-robin fallback past the end of its schedule).
    ///
    /// [`ScriptedAdversary`]: mc_sim::adversary::ScriptedAdversary
    pub(crate) fn force_coins(&self, coins: impl IntoIterator<Item = bool>) {
        let mut state = self.lock();
        state.forced_coins.extend(coins);
    }

    /// Posts `op` for the calling worker, waits until the adversary grants
    /// it, executes it against the mirror memory, and returns its result.
    pub(crate) fn perform(&self, op: Op, rng: Option<&mut dyn Rng>) -> Outcome {
        let pid = current_pid();
        let mut guard = self.lock();
        debug_assert!(guard.pending[pid].is_none(), "one pending op per process");
        guard.pending[pid] = Some(op);
        self.maybe_schedule(&mut guard);
        loop {
            if guard.terminated {
                drop(guard);
                std::panic::panic_any(Interrupted);
            }
            if guard.granted == Some(pid) {
                break;
            }
            guard = self.cv.wait(guard).unwrap_or_else(PoisonError::into_inner);
        }
        let state = &mut *guard;
        state.granted = None;
        let op = state.pending[pid]
            .take()
            .expect("granted process has an op");
        let (outcome, observed) = match &op {
            Op::Read(reg) => {
                let contents = state.memory.read(*reg);
                (Outcome::Read(contents), contents)
            }
            Op::Write { reg, value } => {
                state.memory.write(*reg, *value);
                (Outcome::Write, None)
            }
            Op::ProbWrite { reg, value, prob } => {
                // The adversary committed to this operation before the coin
                // resolves — the probabilistic-write guarantee. One
                // `random_bool` per attempt, exactly like the engine, so
                // coin streams stay aligned across substrates. A replay
                // script pre-empts the rng for genuinely random outcomes
                // only; degenerate probabilities keep drawing so streams
                // stay aligned with the engine's.
                let p = prob.get();
                let scripted = (p > 0.0 && p < 1.0)
                    .then(|| state.forced_coins.pop_front())
                    .flatten();
                let performed = match scripted {
                    Some(forced) => forced,
                    None => {
                        let rng = rng.expect("probabilistic write carries the caller's rng");
                        rng.random_bool(p)
                    }
                };
                if performed {
                    state.memory.write(*reg, *value);
                }
                state.metrics.prob_writes_attempted += 1;
                if performed {
                    state.metrics.prob_writes_performed += 1;
                }
                // mc-check's replay vocabulary: a coin event follows the
                // schedule event only when the outcome is genuinely random.
                if p > 0.0 && p < 1.0 {
                    state.path.push(PathEvent::Coin(performed));
                }
                (Outcome::Prob(performed), Some(u64::from(performed)))
            }
            Op::Collect { .. } => unreachable!("runtime objects never issue collects"),
        };
        state.trace.push(Event {
            step: state.step,
            pid: ProcessId(pid),
            op,
            observed,
        });
        state.ops_done[pid] += 1;
        state.metrics.per_process[pid] += 1;
        state.step += 1;
        outcome
    }

    /// Marks the calling worker finished and hands control onward.
    pub(crate) fn finish(&self, pid: usize) {
        let mut guard = self.lock();
        debug_assert!(!guard.finished[pid]);
        guard.finished[pid] = true;
        guard.unfinished -= 1;
        let survivors_done = guard
            .finished
            .iter()
            .zip(&guard.doomed)
            .all(|(&fin, &doom)| fin || doom);
        if survivors_done {
            // Wait-freedom delivered everything it promises: remaining
            // (doomed) workers unwind without ever being scheduled again.
            guard.terminated = true;
            self.cv.notify_all();
        } else {
            self.maybe_schedule(&mut guard);
        }
    }

    /// Terminates the run from a worker that failed for a real reason
    /// (non-`Interrupted` panic), so peers blocked in the rendezvous unwind
    /// instead of deadlocking.
    pub(crate) fn abort(&self) {
        let mut guard = self.lock();
        guard.terminated = true;
        self.cv.notify_all();
    }

    /// If every unfinished worker has posted, lets the adversary pick the
    /// next operation and wakes its owner.
    fn maybe_schedule(&self, guard: &mut MutexGuard<'_, LabState>) {
        let state = &mut **guard;
        if state.terminated || state.granted.is_some() {
            return;
        }
        let posted = state.pending.iter().filter(|p| p.is_some()).count();
        if posted < state.unfinished || posted == 0 {
            return;
        }
        if state.step >= self.max_steps {
            state.error = Some(LabError::StepLimitExceeded {
                limit: self.max_steps,
            });
            state.terminated = true;
            self.cv.notify_all();
            return;
        }
        let LabState {
            adversary,
            pending,
            ops_done,
            memory,
            step,
            path,
            granted,
            error,
            terminated,
            ..
        } = state;
        let capability = adversary.capability();
        let mut infos = Vec::with_capacity(posted);
        for (ix, slot) in pending.iter().enumerate() {
            if let Some(op) = slot {
                infos.push(observe_pending(ProcessId(ix), ops_done[ix], op, capability));
            }
        }
        let view = View {
            step: *step,
            n: self.n,
            pending: &infos,
            memory: matches!(
                capability,
                Capability::LocationOblivious | Capability::Adaptive
            )
            .then_some(&*memory),
        };
        let pid = adversary.choose(&view);
        if pending.get(pid.index()).map(Option::is_some) != Some(true) {
            *error = Some(LabError::AdversaryChoseInvalid { pid });
            *terminated = true;
            self.cv.notify_all();
            return;
        }
        path.push(PathEvent::Sched(pid));
        *granted = Some(pid.index());
        self.cv.notify_all();
    }

    /// Final accounting, taken after every worker has returned.
    pub(crate) fn take_results(&self) -> (WorkMetrics, Trace, Vec<PathEvent>, Option<LabError>) {
        let mut state = self.lock();
        state.metrics.registers_touched = state.memory.touched() as u64;
        let metrics = std::mem::replace(&mut state.metrics, WorkMetrics::new(self.n));
        let trace = std::mem::replace(&mut state.trace, Trace::new());
        let path = std::mem::take(&mut state.path);
        (metrics, trace, path, state.error.clone())
    }
}

impl fmt::Debug for LabController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LabController")
            .field("n", &self.n)
            .field("max_steps", &self.max_steps)
            .finish()
    }
}

/// The instrumented register substrate: plugs into any `mc-runtime` object
/// via its `*_in` constructor, turning every register operation into a
/// controller yield point.
#[derive(Clone, Debug)]
pub struct LabMemory {
    ctrl: Arc<LabController>,
}

impl LabMemory {
    pub(crate) fn new(ctrl: Arc<LabController>) -> LabMemory {
        LabMemory { ctrl }
    }
}

impl SharedMemory for LabMemory {
    type Reg = LabRegister;

    fn alloc_in_generation(&self, generation: u64) -> LabRegister {
        // Allocation is not an operation in the model (BlockAlloc just
        // bumps a counter), so it does not yield; it only claims the next
        // sequential id — the same ids the model's allocator hands out.
        LabRegister {
            ctrl: Arc::clone(&self.ctrl),
            reg: self.ctrl.alloc(),
            generation,
        }
    }
}

/// One lab register: every access is scheduled by the adversary.
#[derive(Debug)]
pub struct LabRegister {
    ctrl: Arc<LabController>,
    reg: RegisterId,
    /// Pool generation ([`SharedRegister::generation`]). The mirror cell is
    /// physically cleared on [`retire_to`](SharedRegister::retire_to), so
    /// stale-read masking needs no tag check here; the field only carries
    /// the recycle count for the pooling layer.
    generation: u64,
}

impl SharedRegister for LabRegister {
    fn generation(&self) -> u64 {
        self.generation
    }

    fn retire_to(&mut self, generation: u64) {
        debug_assert!(
            generation > self.generation,
            "generation must strictly increase on retire ({} -> {generation})",
            self.generation
        );
        // Exclusive access means no operation on this register is pending;
        // clearing the mirror makes the recycled register read as ⊥ — an
        // initial read — exactly like a fresh allocation.
        self.ctrl.retire(self.reg);
        self.generation = generation;
    }

    fn read(&self) -> Option<u64> {
        match self.ctrl.perform(Op::Read(self.reg), None) {
            Outcome::Read(contents) => contents,
            _ => unreachable!(),
        }
    }

    fn write(&self, value: u64) {
        match self.ctrl.perform(
            Op::Write {
                reg: self.reg,
                value,
            },
            None,
        ) {
            Outcome::Write => {}
            _ => unreachable!(),
        }
    }

    fn prob_write(&self, value: u64, prob: mc_model::Probability, rng: &mut dyn Rng) -> bool {
        match self.ctrl.perform(
            Op::ProbWrite {
                reg: self.reg,
                value,
                prob,
            },
            Some(rng),
        ) {
            Outcome::Prob(performed) => performed,
            _ => unreachable!(),
        }
    }
}
