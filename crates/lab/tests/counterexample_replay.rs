//! The negative-control loop closed end to end: `mc-check`'s graph engine
//! finds a *minimal* violating schedule on the model twin of the lab's
//! broken toy protocol, and the lab replays that script through the real
//! runtime object to the very same disagreement.

use mc_check::{GraphExplorer, PathEvent};
use mc_lab::{Lab, RacyConsensus, RacySpec};
use mc_model::PropertyViolation;

#[test]
fn check_counterexample_replays() {
    let inputs = vec![0u64, 1, 1];
    let report = GraphExplorer::new(RacySpec::new(), inputs.clone())
        .verify_safety()
        .expect("racy spec is checkable");
    let (script, violation) = report.violation.expect("the race must be found at n = 3");

    // Shortest-path minimality: two reads must interleave before either
    // write commits (4 events), and the third process needs one read to
    // adopt and terminate the execution — 5 scheduling events, no coins.
    assert_eq!(script.len(), 5, "not minimal: {script:?}");
    assert!(script.iter().all(|e| matches!(e, PathEvent::Sched(_))));
    // With every session deciding, the disagreement surfaces as a
    // coherence violation: a decider against a conflicting output.
    let PropertyViolation::Coherence {
        decider: pid_a,
        decided: value_a,
        other: pid_b,
        conflicting: value_b,
    } = violation
    else {
        panic!("expected a coherence violation, got {violation:?}");
    };
    assert_ne!(value_a, value_b);

    // Replay through the real runtime object on lab threads.
    let lab = Lab::replay(3, &script, 10_000);
    let racy = RacyConsensus::new_in(&lab.memory());
    let replayed = lab.run(0, |pid, _| racy.decide(inputs[pid])).unwrap();
    assert_eq!(replayed.decisions[pid_a.index()], Some(value_a));
    assert_eq!(replayed.decisions[pid_b.index()], Some(value_b));
}
