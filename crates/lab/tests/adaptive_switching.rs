//! The adaptive conciliator policy, end to end on real runtime threads: a
//! hostile lab schedule degrades the measured δ̂ window, the next recycle
//! flips the portfolio to the shared coin, and the flip is announced as a
//! `conciliator_selected` telemetry event — on the aggregating counters
//! *and* in the JSONL stream an operator would actually tail.

use std::sync::Arc;

use mc_lab::Lab;
use mc_model::{OpKind, ProcessId, RegisterId, Value};
use mc_runtime::{AdaptiveConsensus, AdaptiveOptions, CoinKind, ConciliatorChoice, Consensus};
use mc_sim::{Adversary, Capability, View};
use mc_telemetry::{AggregatingRecorder, ConciliatorKind, JsonlRecorder, MultiRecorder, Recorder};

/// An adaptive scheduler that splits first-mover conciliators on demand.
///
/// The runtime's impatient conciliator only returns values through *reads*,
/// so an attacker that merely floods writes (the sim-tuned `SplitKeeper`)
/// herds every reader onto the final write and achieves nothing. A split
/// needs two landed writes of different values with a read captured in
/// between, which this scheduler engineers directly:
///
/// 1. **Arm** — while the raced register is ⊥, a racer whose probabilistic
///    write just failed is immediately cycled through its (harmless) re-read
///    so it re-issues the write at the next, higher probability. Invariant:
///    every racer except the one being fired holds a pending write.
/// 2. **Pump** — fire the lowest-probability pending write, keeping the
///    racers' impatience levels in lockstep so that whenever a write lands,
///    the opposite value side is armed at a comparable probability.
/// 3. **Capture** — once a write lands, the lander's own re-read is the only
///    pending read on the register; firing it makes one process exit the
///    conciliator with the landed value.
/// 4. **Overwrite** — the armed opposite-value writes are fired (most likely
///    first). If one lands, every remaining reader adopts the new value and
///    the conciliator outputs disagree, burning the stage.
///
/// Landings are probabilistic, so not every stage splits — but enough do to
/// drag the measured δ̂ well below a healthy scheduler's ≈ 1.0. Each
/// successful overwrite debits `splits_left`; once the budget is gone the
/// scheduler degrades to a benign least-advanced round-robin so every decide
/// still terminates.
struct DegradingScheduler {
    splits_left: u32,
    /// Register value observed on the previous step, for flip detection.
    last: Option<(RegisterId, Value)>,
    /// Whether a reader has been captured on the currently landed value.
    captured: bool,
}

impl DegradingScheduler {
    fn new(splits: u32) -> DegradingScheduler {
        DegradingScheduler {
            splits_left: splits,
            last: None,
            captured: false,
        }
    }

    fn attack(&mut self, view: &View<'_>) -> Option<ProcessId> {
        // The raced register: target of the most pending probabilistic
        // writes (processes can straddle stages; attack the crowded one).
        let prob_writes: Vec<_> = view
            .pending
            .iter()
            .filter(|p| p.kind == Some(OpKind::ProbWrite) && p.reg.is_some())
            .collect();
        let reg = prob_writes
            .iter()
            .map(|p| p.reg.expect("filtered on Some"))
            .max_by_key(|&r| (prob_writes.iter().filter(|p| p.reg == Some(r)).count(), r.0))?;
        let racers: Vec<_> = prob_writes.iter().filter(|p| p.reg == Some(reg)).collect();
        let landed = view.memory?.read(reg);

        // Track landings and flips on the raced register.
        match (self.last, landed) {
            (Some((r, old)), Some(now)) if r == reg && old != now => {
                // An overwrite landed past a captured reader: that is the
                // split. Debit the budget and start over on the next stage.
                self.splits_left = self.splits_left.saturating_sub(1);
                self.captured = false;
            }
            (None, Some(_)) | (Some(_), Some(_)) => {}
            (_, None) => self.captured = false,
        }
        self.last = landed.map(|v| (reg, v));

        match landed {
            None => {
                // Arm: a racer that just failed its write has a harmless
                // re-read pending — cycle it so it re-issues at higher p.
                if let Some(p) = view
                    .pending
                    .iter()
                    .find(|p| p.kind == Some(OpKind::Read) && p.reg == Some(reg))
                {
                    return Some(p.pid);
                }
                // A split needs both values racing; a lone value side can
                // only agree with itself, so let the laggards catch up.
                let values: Vec<_> = racers.iter().filter_map(|p| p.value).collect();
                if !values.iter().any(|&v| v != values[0]) {
                    return None;
                }
                // Pump: fire the least-likely attempt, keeping both sides'
                // impatience in lockstep.
                racers
                    .iter()
                    .min_by(|a, b| {
                        a.prob
                            .partial_cmp(&b.prob)
                            .expect("probabilities compare")
                            .then(a.pid.0.cmp(&b.pid.0))
                    })
                    .map(|p| p.pid)
            }
            Some(v) => {
                // Capture: the lander's re-read is the only read pending on
                // the register — fire it so one process exits with `v`.
                if !self.captured {
                    if let Some(rd) = view
                        .pending
                        .iter()
                        .filter(|p| p.kind == Some(OpKind::Read) && p.reg == Some(reg))
                        .max_by_key(|p| (p.ops_done, p.pid.0))
                    {
                        self.captured = true;
                        return Some(rd.pid);
                    }
                }
                // Overwrite: fire the armed opposite-value write most likely
                // to land. If none is pending the round is spoiled; fall
                // back so the remaining readers herd and the stage resolves.
                racers
                    .iter()
                    .filter(|p| p.value.is_some() && p.value != Some(v))
                    .max_by(|a, b| {
                        a.prob
                            .partial_cmp(&b.prob)
                            .expect("probabilities compare")
                            .then(b.pid.0.cmp(&a.pid.0))
                    })
                    .map(|p| p.pid)
            }
        }
    }
}

impl Adversary for DegradingScheduler {
    fn capability(&self) -> Capability {
        Capability::Adaptive
    }

    fn choose(&mut self, view: &View<'_>) -> ProcessId {
        debug_assert!(!view.pending.is_empty());
        if self.splits_left > 0 {
            if let Some(pid) = self.attack(view) {
                return pid;
            }
        }
        // Benign fallback: least-advanced first, lowest pid on ties.
        view.pending
            .iter()
            .min_by_key(|p| (p.ops_done, p.pid.0))
            .expect("non-empty pending")
            .pid
    }

    fn name(&self) -> String {
        "degrading-scheduler".to_string()
    }
}

#[test]
fn hostile_schedule_switches_to_the_coin_and_announces_it() {
    let n = 3;
    let options = AdaptiveOptions {
        window: 8,
        min_samples: 4,
        delta_threshold: 0.5,
        coin: CoinKind::Voting { quorum_factor: 1 },
    };
    let agg = Arc::new(AggregatingRecorder::new());
    let (jsonl, buffer) = JsonlRecorder::in_memory();
    let recorder: Arc<dyn Recorder> = Arc::new(MultiRecorder::new(vec![
        Arc::clone(&agg) as Arc<dyn Recorder>,
        Arc::new(jsonl),
    ]));

    let mut lab = Lab::new(n, Box::new(DegradingScheduler::new(4)), &[], 500_000);
    let mut consensus = AdaptiveConsensus::from_consensus(
        Consensus::builder()
            .n(n)
            .memory(lab.memory())
            .conciliator(ConciliatorChoice::Adaptive(options))
            .recorder(recorder)
            .build(),
    );
    assert_eq!(consensus.selected(), ConciliatorKind::Impatient);

    let mut switched_at = None;
    for epoch in 0..12u64 {
        let report = lab
            .run(epoch, |pid, rng| {
                consensus.decide_as(pid, pid as u64 % 2, rng)
            })
            .expect("epoch must terminate");
        let first = report.decisions[0].expect("pid 0 decided");
        assert!(
            report.decisions.iter().all(|&d| d == Some(first)),
            "epoch {epoch}: {:?}",
            report.decisions
        );
        consensus.reset();
        lab.reset_epoch(Box::new(DegradingScheduler::new(4)), &[]);
        if consensus.selected() == ConciliatorKind::Coin {
            switched_at = Some(epoch);
            break;
        }
    }
    let switched_at = switched_at.unwrap_or_else(|| {
        panic!(
            "δ̂ window never degraded past the threshold; last estimate {:?}",
            consensus.delta_hat()
        )
    });
    // The flip required a full window, never a thin one.
    assert!(
        (switched_at + 1) as usize * n >= options.min_samples,
        "switched on {} decides, min_samples is {}",
        (switched_at + 1) as usize * n,
        options.min_samples
    );

    // One more epoch on the switched instance: the voting-coin conciliator
    // decides and agrees on the same hostile substrate.
    let report = lab
        .run(99, |pid, rng| consensus.decide_as(pid, pid as u64 % 2, rng))
        .expect("coin epoch must terminate");
    let first = report.decisions[0].expect("pid 0 decided");
    assert!(report.decisions.iter().all(|&d| d == Some(first)));

    // The selection history reached both recorders: the initial impatient
    // resolution plus one per reset, at least one of which picked the coin.
    assert!(agg.conciliator_selections() >= 2);
    assert!(agg.coin_selections() >= 1);
    let stream = String::from_utf8(buffer.lock().expect("buffer").clone()).expect("utf8 jsonl");
    assert!(
        stream.contains("conciliator_selected"),
        "no selection event in the JSONL stream"
    );
    assert!(
        stream.contains(r#""choice":"coin""#),
        "the coin selection never reached the JSONL stream"
    );
    assert!(
        stream.contains(r#""delta_hat":"#),
        "the switch should carry the degraded estimate"
    );
}
