//! Adversary-synthesis experiments: E14.

use std::fmt::Write as _;

use mc_analysis::{theory, Table};
use mc_core::FirstMoverConciliator;
use mc_sim::harness::inputs;
use mc_sim::synth::{synthesize_schedule_attack, SynthConfig};

use super::Mode;

/// E14 — search for the worst oblivious schedule against the impatient
/// conciliator and check the synthesized attack still respects Theorem 7.
pub fn e14_adversary_synthesis(mode: Mode) -> String {
    let delta = theory::impatient_agreement_lower_bound();
    let (iterations, eval_trials) = match mode {
        Mode::Quick => (40, 100),
        Mode::Full => (250, 400),
    };
    let mut out = format!(
        "Instead of hand-writing attacks, search for them: randomized local\n\
         search over fixed (oblivious) schedules, minimizing the measured\n\
         agreement rate. The held-out column is scored on fresh seeds, so it\n\
         is an honest empirical upper bound on worst-case oblivious δ.\n\
         {iterations} iterations × {eval_trials} paired trials per candidate.\n\n"
    );
    let mut table = Table::new(
        "E14: synthesized oblivious attacks vs the impatient conciliator",
        &[
            "n",
            "round-robin rate",
            "synthesized (held-out)",
            "paper δ",
            "≥ δ?",
        ],
    );
    for &n in &mode.cap(&[4usize, 8, 16], 2) {
        let config = SynthConfig {
            horizon: 6 * n,
            eval_trials,
            iterations,
            seed: 0xE14 + n as u64,
            ..SynthConfig::default()
        };
        let result = synthesize_schedule_attack(
            &FirstMoverConciliator::impatient(),
            &inputs::alternating(n, 2),
            &config,
        );
        table.row(&[
            n.to_string(),
            format!("{:.4}", result.round_robin_rate),
            format!("{:.4}", result.holdout_rate),
            format!("{delta:.4}"),
            if result.holdout_rate >= delta {
                "yes"
            } else {
                "NO"
            }
            .to_string(),
        ]);
    }
    let _ = writeln!(out, "{table}");
    out.push_str(
        "The optimizer reliably finds schedules far worse than round-robin\n\
         (bursty patterns that stack probabilistic writes behind the race\n\
         winner), but even optimized oblivious attacks stay above Theorem 7's\n\
         δ — evidence the guarantee is robust, not an artifact of weak\n\
         hand-written adversaries.\n",
    );
    out
}
