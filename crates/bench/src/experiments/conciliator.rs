//! Conciliator experiments: E1, E2, E6, E7, E11.

use std::fmt::Write as _;
use std::sync::Arc;

use mc_analysis::{fit_linear, fit_log2, theory, wilson_interval, Histogram, Summary, Table};
use mc_core::{
    CoinConciliator, ConciliatorCoin, FirstMoverConciliator, VotingSharedCoin, WriteSchedule,
};
use mc_sim::adversary::{
    Adversary, ImpatienceExploiter, RandomScheduler, RoundRobin, SplitKeeper, WriteBlocker,
};
use mc_sim::harness::{self, inputs};
use mc_sim::sched::PriorityScheduler;
use mc_sim::EngineConfig;

use super::Mode;

type Maker = (&'static str, fn(u64, usize) -> Box<dyn Adversary>);

fn adversary_menu() -> Vec<Maker> {
    vec![
        (
            "round-robin (oblivious)",
            |_, _| Box::new(RoundRobin::new()),
        ),
        ("random (oblivious)", |s, _| {
            Box::new(RandomScheduler::new(s))
        }),
        ("write-blocker (value-obl.)", |_, _| {
            Box::new(WriteBlocker::new())
        }),
        ("impatience-exploiter (loc-obl.)", |_, _| {
            Box::new(ImpatienceExploiter::new())
        }),
        ("split-keeper (adaptive)", |s, _| {
            Box::new(SplitKeeper::new(s))
        }),
    ]
}

/// E1 — Theorem 7's agreement probability under every adversary class.
pub fn e1_agreement_probability(mode: Mode) -> String {
    let delta = theory::impatient_agreement_lower_bound();
    let trials = mode.trials(3000);
    let ns = mode.cap(&[4usize, 16, 64], 2);
    let mut out = format!(
        "Paper bound: δ = (1 − e^(−1/4))/4 ≈ {delta:.4} for any adversary (Theorem 7).\n\
         Trials per cell: {trials}. Inputs: maximally split (alternating 0/1).\n\n"
    );
    let spec = FirstMoverConciliator::impatient();
    for n in ns {
        let mut table = Table::new(
            format!("E1: agreement probability, n = {n}"),
            &["adversary", "rate", "95% CI", "paper δ", "holds"],
        );
        for (name, make) in adversary_menu() {
            let stats = harness::run_trials(
                &spec,
                trials,
                0xE1,
                &EngineConfig::default(),
                |_| inputs::alternating(n, 2),
                |s| make(s, n),
            )
            .expect("trials run");
            let ci = wilson_interval(stats.agreements, stats.trials);
            table.row(&[
                name.to_string(),
                format!("{:.4}", stats.agreement_rate()),
                format!("[{:.4}, {:.4}]", ci.low, ci.high),
                format!("{delta:.4}"),
                if ci.low >= delta { "yes" } else { "NO" }.to_string(),
            ]);
        }
        let _ = writeln!(out, "{table}");
    }
    out
}

/// E2 — Theorem 7's work bounds.
pub fn e2_work_bounds(mode: Mode) -> String {
    let trials = mode.trials(1000);
    let ns = mode.cap(&[4usize, 8, 16, 32, 64, 128, 256, 512], 5);
    let spec = FirstMoverConciliator::impatient();
    let mut table = Table::new(
        "E2: impatient conciliator work vs n",
        &[
            "n",
            "indiv mean",
            "indiv max",
            "paper 2⌈lg n⌉+4",
            "total mean",
            "paper ≤6n",
        ],
    );
    let mut xs = Vec::new();
    let mut max_indiv = Vec::new();
    let mut mean_total = Vec::new();
    for &n in &ns {
        let stats = harness::run_trials(
            &spec,
            trials,
            0xE2,
            &EngineConfig::default(),
            |_| inputs::alternating(n, 2),
            |s| Box::new(RandomScheduler::new(s)),
        )
        .expect("trials run");
        let indiv = Summary::of_counts(&stats.individual_work);
        table.row(&[
            n.to_string(),
            format!("{:.2}", indiv.mean),
            stats.max_individual_work().to_string(),
            theory::impatient_individual_work_bound(n as u64).to_string(),
            format!("{:.1}", stats.mean_total_work()),
            theory::impatient_total_work_bound(n as u64).to_string(),
        ]);
        xs.push(n as f64);
        max_indiv.push(stats.max_individual_work() as f64);
        mean_total.push(stats.mean_total_work());
    }
    let log_fit = fit_log2(&xs, &max_indiv);
    let lin_fit = fit_linear(&xs, &mean_total);

    // Distribution of individual work at the largest n: a figure-style
    // view showing the mass concentrated far below the worst-case bound.
    let biggest = *ns.last().expect("non-empty sweep");
    let dist_stats = harness::run_trials(
        &spec,
        trials,
        0xE2D,
        &EngineConfig::default(),
        |_| inputs::alternating(biggest, 2),
        |s| Box::new(RandomScheduler::new(s)),
    )
    .expect("trials run");
    let histogram = Histogram::of(&dist_stats.individual_work, 2);
    format!(
        "{table}\nfits: worst individual ≈ {log_fit} (paper 2·lg n + 4)\n      \
         mean total     ≈ {lin_fit} (paper ≤ 6·n)\n\n\
         individual-work distribution at n = {biggest} (bound {}):\n{histogram}\n\
         p99 bin bound: {} ops\n",
        theory::impatient_individual_work_bound(biggest as u64),
        histogram.quantile_bound(0.99),
    )
}

/// E6 — the paper's schedule vs the classic Θ(1/n) baseline.
pub fn e6_baseline_comparison(mode: Mode) -> String {
    let trials = mode.trials(300);
    let ns = mode.cap(&[4usize, 8, 16, 32, 64, 128, 256], 5);
    let mut out = String::from(
        "Prior art (Chor–Israeli–Li, Cheung) writes with fixed probability Θ(1/n):\n\
         O(n) individual work. The impatient 2^k/n schedule caps it at O(log n)\n\
         (§5.2). Solo-leader workload (priority scheduler) exposes the difference;\n\
         the fair-scheduler columns show nobody pays more under impatience.\n\n",
    );
    let mut table = Table::new(
        "E6: individual work, impatient vs fixed",
        &[
            "n",
            "solo impatient",
            "solo fixed",
            "ratio",
            "fair impatient",
            "fair fixed",
        ],
    );
    for &n in &ns {
        let run = |spec: &FirstMoverConciliator, solo: bool| {
            harness::run_trials(
                spec,
                trials,
                0xE6,
                &EngineConfig::default(),
                |_| inputs::alternating(n, 2),
                |s| {
                    if solo {
                        Box::new(PriorityScheduler::descending(n)) as Box<dyn Adversary>
                    } else {
                        Box::new(RandomScheduler::new(s))
                    }
                },
            )
            .expect("trials run")
            .mean_individual_work()
        };
        let imp = FirstMoverConciliator::impatient();
        let fix = FirstMoverConciliator::fixed(1.0);
        let (solo_imp, solo_fix) = (run(&imp, true), run(&fix, true));
        table.row(&[
            n.to_string(),
            format!("{solo_imp:.1}"),
            format!("{solo_fix:.1}"),
            format!("{:.1}x", solo_fix / solo_imp),
            format!("{:.1}", run(&imp, false)),
            format!("{:.1}", run(&fix, false)),
        ]);
    }
    let _ = writeln!(out, "{table}");
    out
}

/// E7 — Theorem 6: conciliators from weak shared coins.
pub fn e7_coin_conciliator(mode: Mode) -> String {
    let trials = mode.trials(400);
    let n = 4;
    let mut out = format!(
        "CoinConciliator wraps a weak shared coin (+2 registers, +2 ops) and\n\
         inherits its agreement parameter δ (Theorem 6). The voting coin\n\
         tolerates the adaptive adversary at Θ(n) ops per vote. n = {n},\n\
         {trials} trials per cell, split inputs.\n\n"
    );
    let voting = CoinConciliator::new(Arc::new(VotingSharedCoin::new()));
    let derived = CoinConciliator::new(Arc::new(ConciliatorCoin::new(Arc::new(
        FirstMoverConciliator::impatient(),
    ))));
    let mut table = Table::new(
        "E7: coin-based conciliators",
        &["conciliator", "adversary", "agree rate", "mean total ops"],
    );
    type Row = (&'static str, fn(u64) -> Box<dyn Adversary>);
    let advs: Vec<Row> = vec![
        ("random", |s| Box::new(RandomScheduler::new(s))),
        ("split-keeper (adaptive)", |s| Box::new(SplitKeeper::new(s))),
    ];
    for (cname, spec) in [
        ("voting coin (4n² votes)", &voting),
        ("coin from impatient conciliator", &derived),
    ] {
        for (aname, make) in &advs {
            let stats = harness::run_trials(
                spec,
                trials,
                0xE7,
                &EngineConfig::default(),
                |_| inputs::alternating(n, 2),
                |s| make(s),
            )
            .expect("trials run");
            table.row(&[
                cname.to_string(),
                aname.to_string(),
                format!("{:.3}", stats.agreement_rate()),
                format!("{:.1}", stats.mean_total_work()),
            ]);
        }
    }
    let _ = writeln!(out, "{table}");

    // The price of adaptive-adversary tolerance: fit the voting coin's
    // total-work growth exponent (votes Θ(n²) × Θ(n) ops per vote ⇒ ~n³).
    let cost_trials = mode.trials(60);
    let ns = [2usize, 3, 4, 6, 8];
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &nn in &ns {
        let stats = harness::run_trials(
            &voting,
            cost_trials,
            0xE7C,
            &EngineConfig::default(),
            |_| inputs::alternating(nn, 2),
            |s| Box::new(RandomScheduler::new(s)),
        )
        .expect("trials run");
        xs.push(nn as f64);
        ys.push(stats.mean_total_work());
    }
    let power = mc_analysis::fit_power(&xs, &ys);
    let _ = writeln!(
        out,
        "voting-coin total work over n ∈ {ns:?}: ≈ {power} — the predicted cubic\n\
         growth. The probabilistic-write conciliator gets constant δ for Θ(n)\n\
         total work instead; that gap is the paper's motivation for weak\n\
         adversaries.\n"
    );
    out
}

/// E11 — ablations: success detection, schedule ratio, fast path is covered
/// in E10; here schedules and detection.
pub fn e11_ablations(mode: Mode) -> String {
    let trials = mode.trials(600);
    let n = 64;
    let mut out = format!("Ablations on the conciliator, n = {n}, {trials} trials per row.\n\n");

    // Footnote 2: detecting successful probabilistic writes saves ~2 ops.
    let config = EngineConfig::default().with_detectable_prob_writes();
    let mut detection = Table::new(
        "E11a: success detection (footnote 2)",
        &["variant", "indiv mean", "total mean", "agree rate"],
    );
    for (name, spec) in [
        ("standard", FirstMoverConciliator::impatient()),
        (
            "detecting",
            FirstMoverConciliator::impatient().detecting_success(),
        ),
    ] {
        let stats = harness::run_trials(
            &spec,
            trials,
            0xE11,
            &config,
            |_| inputs::alternating(n, 2),
            |s| Box::new(RandomScheduler::new(s)),
        )
        .expect("trials run");
        detection.row(&[
            name.to_string(),
            format!("{:.2}", stats.mean_individual_work()),
            format!("{:.1}", stats.mean_total_work()),
            format!("{:.3}", stats.agreement_rate()),
        ]);
    }
    let _ = writeln!(out, "{detection}");

    // Schedule ratio: 1 (fixed), 2 (paper), 4 (greedier).
    let mut schedules = Table::new(
        "E11b: write-probability schedule",
        &[
            "schedule",
            "indiv mean",
            "indiv max",
            "total mean",
            "agree rate",
        ],
    );
    for (name, sched) in [
        ("1/n (fixed, CIL)", WriteSchedule::fixed(1.0)),
        ("2^k/n (paper)", WriteSchedule::impatient()),
        ("4^k/n (greedy)", WriteSchedule::geometric(1.0, 4.0)),
    ] {
        let spec = FirstMoverConciliator::with_schedule(sched);
        let stats = harness::run_trials(
            &spec,
            trials,
            0xE11B,
            &EngineConfig::default(),
            |_| inputs::alternating(n, 2),
            |s| Box::new(RandomScheduler::new(s)),
        )
        .expect("trials run");
        schedules.row(&[
            name.to_string(),
            format!("{:.2}", stats.mean_individual_work()),
            stats.max_individual_work().to_string(),
            format!("{:.1}", stats.mean_total_work()),
            format!("{:.3}", stats.agreement_rate()),
        ]);
    }
    let _ = writeln!(out, "{schedules}");
    out.push_str(
        "Greedier schedules trade agreement probability for speed; the paper's\n\
         doubling is the sweet spot keeping δ constant at O(log n) attempts.\n",
    );
    out
}
