//! Restricted-scheduler experiments: E9.

use std::fmt::Write as _;
use std::sync::Arc;

use mc_analysis::Table;
use mc_core::protocol::ratifier_only;
use mc_core::Ratifier;
use mc_model::properties;
use mc_sim::harness::{self, inputs};
use mc_sim::sched::{NoisyScheduler, PriorityScheduler};
use mc_sim::EngineConfig;

use super::Mode;

/// E9 — §4.2: ratifier-only consensus under noisy and priority schedulers.
pub fn e9_ratifier_only(mode: Mode) -> String {
    let trials = mode.trials(200);
    let ns = mode.cap(&[2usize, 4, 8, 16], 3);
    let mut out = String::from(
        "§4.2: the conciliator-free chain R₁; R₂; … cannot terminate under a\n\
         lockstep adversary, but restricted schedulers let some process pull\n\
         ahead and pass a ratifier alone. Binary ratifiers; split inputs.\n\n",
    );

    let spec = ratifier_only(Arc::new(Ratifier::binary()));

    let mut prio = Table::new(
        "E9a: priority scheduling",
        &["n", "decided", "indiv mean", "total mean"],
    );
    for &n in &ns {
        let stats = harness::run_trials(
            &spec,
            trials,
            0xE9,
            &EngineConfig::default(),
            |_| inputs::alternating(n, 2),
            |s| Box::new(PriorityScheduler::shuffled(n, s)),
        )
        .expect("trials run");
        prio.row(&[
            n.to_string(),
            format!("{}/{}", stats.all_decided, stats.trials),
            format!("{:.2}", stats.mean_individual_work()),
            format!("{:.1}", stats.mean_total_work()),
        ]);
    }
    let _ = writeln!(out, "{prio}");

    let mut noisy = Table::new(
        "E9b: noisy scheduler (accumulating Gaussian jitter)",
        &["n", "sigma", "decided", "indiv mean", "total mean"],
    );
    for &n in &ns {
        for sigma in [0.2, 0.5, 0.9] {
            let stats = harness::run_trials(
                &spec,
                trials,
                0xE9B,
                &EngineConfig::default(),
                |_| inputs::alternating(n, 2),
                |s| Box::new(NoisyScheduler::new(n, sigma, s)),
            )
            .expect("trials run");
            noisy.row(&[
                n.to_string(),
                format!("{sigma}"),
                format!("{}/{}", stats.all_decided, stats.trials),
                format!("{:.2}", stats.mean_individual_work()),
                format!("{:.1}", stats.mean_total_work()),
            ]);
        }
    }
    let _ = writeln!(out, "{noisy}");

    // The negative control: lockstep round-robin livelocks.
    let err = harness::run_object(
        &spec,
        &inputs::alternating(2, 2),
        &mut mc_sim::adversary::RoundRobin::new(),
        0,
        &EngineConfig::default().with_max_steps(20_000),
    )
    .expect_err("lockstep must livelock");
    let _ = writeln!(
        out,
        "negative control: under lockstep round-robin the chain hit the step\n\
         limit as expected ({err}).\n"
    );

    // Priority: the top-priority process's value always wins.
    let mut dictated = true;
    for seed in 0..trials.min(100) as u64 {
        let n = 4;
        let ins = inputs::dissenter(n); // p3 proposes 1, others 0
        let res = harness::run_object(
            &spec,
            &ins,
            &mut PriorityScheduler::with_priorities(vec![1, 2, 3, 99]),
            seed,
            &EngineConfig::default(),
        )
        .expect("run completes");
        properties::check_consensus(&ins, &res.outputs).expect("consensus holds");
        dictated &= res.outputs[0].value() == 1;
    }
    let _ = writeln!(
        out,
        "with explicit priorities, the highest-priority process's input won in\n\
         every run: {dictated} (the §4.2 'overtake' argument, observed).\n"
    );
    out
}
