//! The experiment registry: one function per experiment id (E1–E15).

mod conciliator;
mod consensus;
mod crashes;
mod exact;
mod ratifier;
mod restricted;
mod runtime;
mod synthesis;

/// How much statistical effort to spend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Reduced trial counts for CI and smoke runs (seconds per experiment).
    Quick,
    /// Full trial counts used for the numbers in `EXPERIMENTS.md`.
    Full,
}

impl Mode {
    /// Scales a full-mode trial count down in quick mode.
    pub fn trials(self, full: usize) -> usize {
        match self {
            Mode::Quick => (full / 10).max(30),
            Mode::Full => full,
        }
    }

    /// Drops the largest sweep entries in quick mode.
    pub fn cap<T: Copy>(self, values: &[T], quick_len: usize) -> Vec<T> {
        match self {
            Mode::Quick => values.iter().copied().take(quick_len).collect(),
            Mode::Full => values.to_vec(),
        }
    }
}

/// An experiment entry: id, claim, runner.
pub type Experiment = (&'static str, &'static str, fn(Mode) -> String);

/// The experiment ids, their claims, and their runner functions.
pub const EXPERIMENTS: &[Experiment] = &[
    (
        "e1",
        "Theorem 7: conciliator agreement probability ≥ (1−e^{−1/4})/4 under every adversary",
        conciliator::e1_agreement_probability,
    ),
    (
        "e2",
        "Theorem 7: conciliator work — individual ≤ 2⌈lg n⌉+4, expected total ≤ 6n",
        conciliator::e2_work_bounds,
    ),
    (
        "e3",
        "Theorem 10: m-valued ratifier registers and work across quorum schemes",
        ratifier::e3_ratifier_costs,
    ),
    (
        "e4",
        "§1: consensus work — O(log n) individual, O(n log m) total",
        consensus::e4_consensus_scaling,
    ),
    (
        "e5",
        "§1: binary consensus total work is Θ(n) (Attiya–Censor tight)",
        consensus::e5_linear_total_work,
    ),
    (
        "e6",
        "§5.2: impatient (2^k/n) vs classic fixed (1/n) individual work; crossover",
        conciliator::e6_baseline_comparison,
    ),
    (
        "e7",
        "Theorem 6: CoinConciliator inherits δ from a weak shared coin (adaptive adversary)",
        conciliator::e7_coin_conciliator,
    ),
    (
        "e8",
        "Theorem 5: bounded construction reaches fallback with probability (1−δ)^k",
        consensus::e8_bounded_fallback,
    ),
    (
        "e9",
        "§4.2: ratifier-only consensus under noisy and priority schedulers",
        restricted::e9_ratifier_only,
    ),
    (
        "e10",
        "§4.1.1: the fast path decides unanimous inputs without conciliators",
        consensus::e10_fast_path,
    ),
    (
        "e11",
        "Ablations: success detection (footnote 2), schedule ratio, fast path",
        conciliator::e11_ablations,
    ),
    (
        "e12",
        "Runtime: the same algorithms on real threads — correctness and throughput",
        runtime::e12_runtime,
    ),
    (
        "e13",
        "Exhaustive checking: exact worst-case δ* at n = 2; safety on every schedule",
        exact::e13_exact_small_n,
    ),
    (
        "e14",
        "Adversary synthesis: searched oblivious schedules still respect Theorem 7's δ",
        synthesis::e14_adversary_synthesis,
    ),
    (
        "e15",
        "Wait-freedom: consensus tolerates up to n − 1 crash failures (§1)",
        crashes::e15_crash_tolerance,
    ),
];

/// Runs one experiment by id (e.g. `"e3"`). Returns its printed report.
///
/// # Errors
///
/// Returns an error listing valid ids if `id` is unknown.
pub fn run_experiment(id: &str, mode: Mode) -> Result<String, String> {
    for (eid, claim, runner) in EXPERIMENTS {
        if *eid == id {
            let mut out = String::new();
            out.push_str(&format!("== {} — {claim}\n\n", eid.to_uppercase()));
            out.push_str(&runner(mode));
            return Ok(out);
        }
    }
    Err(format!(
        "unknown experiment {id:?}; valid ids: {}",
        EXPERIMENTS
            .iter()
            .map(|(id, _, _)| *id)
            .collect::<Vec<_>>()
            .join(", ")
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        assert_eq!(EXPERIMENTS.len(), 15);
        let mut ids: Vec<&str> = EXPERIMENTS.iter().map(|(id, _, _)| *id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 15);
    }

    #[test]
    fn unknown_id_is_reported() {
        let err = run_experiment("e99", Mode::Quick).unwrap_err();
        assert!(err.contains("e99"));
        assert!(err.contains("e12"));
    }

    #[test]
    fn mode_scaling() {
        assert_eq!(Mode::Quick.trials(1000), 100);
        assert_eq!(Mode::Quick.trials(100), 30);
        assert_eq!(Mode::Full.trials(1000), 1000);
        assert_eq!(Mode::Quick.cap(&[1, 2, 3, 4], 2), vec![1, 2]);
        assert_eq!(Mode::Full.cap(&[1, 2, 3, 4], 2), vec![1, 2, 3, 4]);
    }
}
