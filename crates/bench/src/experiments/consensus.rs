//! Full-protocol experiments: E4, E5, E8, E10.

use std::fmt::Write as _;
use std::sync::Arc;

use mc_analysis::{fit_linear, theory, Table};
use mc_core::protocol::ConsensusBuilder;
use mc_core::ChainProbe;
use mc_model::properties;
use mc_sim::adversary::RandomScheduler;
use mc_sim::harness::{self, inputs};
use mc_sim::EngineConfig;

use super::Mode;

/// E4 — consensus work scaling in n and m.
pub fn e4_consensus_scaling(mode: Mode) -> String {
    let trials = mode.trials(300);
    let ns = mode.cap(&[4usize, 16, 64, 256], 3);
    let ms = mode.cap(&[2u64, 16, 256], 3);
    let mut out = String::from(
        "Headline claim (§1): consensus in the probabilistic-write model with\n\
         O(log n) expected individual work and O(n log m) expected total work.\n\n",
    );
    let mut table = Table::new(
        "E4: consensus work vs n and m",
        &[
            "n",
            "m",
            "indiv mean",
            "total mean",
            "total/(n·max(1,lg m))",
        ],
    );
    for &n in &ns {
        for &m in &ms {
            let spec = ConsensusBuilder::multivalued(m).build();
            let stats = harness::run_trials(
                &spec,
                trials,
                0xE4,
                &EngineConfig::default(),
                |t| inputs::random(n, m, t as u64 * 13 + 1),
                |s| Box::new(RandomScheduler::new(s)),
            )
            .expect("trials run");
            assert_eq!(stats.all_decided, stats.trials, "every run must decide");
            let norm = n as f64 * (theory::ceil_lg(m).max(1)) as f64;
            table.row(&[
                n.to_string(),
                m.to_string(),
                format!("{:.1}", stats.mean_individual_work()),
                format!("{:.1}", stats.mean_total_work()),
                format!("{:.2}", stats.mean_total_work() / norm),
            ]);
        }
    }
    let _ = writeln!(out, "{table}");
    out.push_str(
        "The normalized column is flat-ish in n and falls in m (the binomial\n\
         ratifier needs fewer than lg m + lg m ops): total work is O(n log m).\n\
         Individual work grows only with lg n and lg m.\n",
    );
    out
}

/// E5 — binary consensus total work is Θ(n).
pub fn e5_linear_total_work(mode: Mode) -> String {
    let trials = mode.trials(400);
    let ns = mode.cap(&[4usize, 8, 16, 32, 64, 128, 256, 512], 5);
    let spec = ConsensusBuilder::binary().build();
    let mut table = Table::new(
        "E5: binary consensus total work vs n",
        &["n", "total mean", "total/n", "indiv mean"],
    );
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &n in &ns {
        let stats = harness::run_trials(
            &spec,
            trials,
            0xE5,
            &EngineConfig::default(),
            |_| inputs::alternating(n, 2),
            |s| Box::new(RandomScheduler::new(s)),
        )
        .expect("trials run");
        table.row(&[
            n.to_string(),
            format!("{:.1}", stats.mean_total_work()),
            format!("{:.2}", stats.mean_total_work() / n as f64),
            format!("{:.2}", stats.mean_individual_work()),
        ]);
        xs.push(n as f64);
        ys.push(stats.mean_total_work());
    }
    let fit = fit_linear(&xs, &ys);
    format!(
        "{table}\nlinear fit: total ≈ {fit}\n\
         A constant total/n column demonstrates the O(n) bound that makes the\n\
         Attiya–Censor lower bound asymptotically tight in this model (§1).\n"
    )
}

/// E8 — Theorem 5: fallback probability of the bounded construction.
pub fn e8_bounded_fallback(mode: Mode) -> String {
    let trials = mode.trials(1500);
    let n = 6;
    let mut out = format!(
        "Theorem 5: truncating after k conciliator rounds reaches the fallback K\n\
         with probability (1−δ)^k. We measure the per-round agreement rate δ̂\n\
         empirically, then compare measured fallback rates to (1−δ̂)^k.\n\
         n = {n}, {trials} trials per k, split inputs, random scheduler.\n\n"
    );

    // Estimate per-round conciliator agreement probability in context.
    let c_stats = harness::run_trials(
        &mc_core::FirstMoverConciliator::impatient(),
        trials,
        0xE8,
        &EngineConfig::default(),
        |_| inputs::alternating(n, 2),
        |s| Box::new(RandomScheduler::new(s)),
    )
    .expect("trials run");
    let delta_hat = c_stats.agreement_rate();
    let _ = writeln!(out, "measured per-round δ̂ = {delta_hat:.3}\n");

    let mut table = Table::new(
        "E8: fallback rate vs rounds k",
        &["k", "fallback rate", "predicted (1−δ̂)^k", "still correct"],
    );
    for k in [1usize, 2, 3, 5, 8] {
        let probe = ChainProbe::new();
        let spec = ConsensusBuilder::binary()
            .bounded(k)
            .probe(Arc::clone(&probe))
            .build();
        let mut fallbacks = 0;
        let mut correct = true;
        for t in 0..trials {
            probe.reset();
            let ins = inputs::alternating(n, 2);
            let seed = t as u64 * 7 + 3;
            let res = harness::run_object(
                &spec,
                &ins,
                &mut RandomScheduler::new(seed),
                seed,
                &EngineConfig::default(),
            )
            .expect("run completes");
            correct &= properties::check_consensus(&ins, &res.outputs).is_ok();
            if probe.max_stage() >= 2 + 2 * k {
                fallbacks += 1;
            }
        }
        table.row(&[
            k.to_string(),
            format!("{:.4}", fallbacks as f64 / trials as f64),
            format!("{:.4}", theory::fallback_probability(delta_hat, k as u32)),
            if correct { "yes" } else { "NO" }.to_string(),
        ]);
    }
    let _ = writeln!(out, "{table}");
    out.push_str("k = Θ(log n) rounds make the fallback contribution negligible (Theorem 5).\n");
    out
}

/// E10 — the fast path (§4.1.1).
pub fn e10_fast_path(mode: Mode) -> String {
    let trials = mode.trials(500);
    let n = 16;
    let mut out = format!(
        "§4.1.1: the prefix R₋₁; R₀ decides without running any conciliator when\n\
         the fastest processes already agree — unanimity costs ≤ 8 ops per\n\
         process. n = {n}, {trials} trials per row.\n\n"
    );
    let mut table = Table::new(
        "E10: fast path on/off",
        &[
            "inputs",
            "fast path",
            "indiv mean",
            "total mean",
            "max stage",
        ],
    );
    for unanimous in [true, false] {
        for fast in [true, false] {
            let probe = ChainProbe::new();
            let builder = ConsensusBuilder::binary().probe(Arc::clone(&probe));
            let spec = if fast {
                builder
            } else {
                builder.without_fast_path()
            }
            .build();
            let mut max_stage = 0;
            let mut indiv = Vec::new();
            let mut total = Vec::new();
            for t in 0..trials {
                probe.reset();
                let seed = t as u64;
                let ins = if unanimous {
                    inputs::unanimous(n, 1)
                } else {
                    inputs::alternating(n, 2)
                };
                let res = harness::run_object(
                    &spec,
                    &ins,
                    &mut RandomScheduler::new(seed),
                    seed,
                    &EngineConfig::default(),
                )
                .expect("run completes");
                properties::check_consensus(&ins, &res.outputs).expect("consensus holds");
                max_stage = max_stage.max(probe.max_stage());
                indiv.push(res.metrics.individual_work());
                total.push(res.metrics.total_work());
            }
            let mean = |v: &[u64]| v.iter().map(|&x| x as f64).sum::<f64>() / v.len().max(1) as f64;
            table.row(&[
                if unanimous { "unanimous" } else { "split" }.to_string(),
                if fast { "on" } else { "off" }.to_string(),
                format!("{:.2}", mean(&indiv)),
                format!("{:.1}", mean(&total)),
                max_stage.to_string(),
            ]);
        }
    }
    let _ = writeln!(out, "{table}");
    out.push_str(
        "With unanimous inputs and the fast path on, no run leaves stages 0–1 and\n\
         work stays constant; without it every run pays for a conciliator.\n",
    );
    out
}
