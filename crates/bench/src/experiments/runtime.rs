//! Real-thread experiments: E12.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use mc_analysis::Table;
use mc_runtime::Consensus;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use super::Mode;

/// E12 — the same algorithms on real threads: correctness under the OS
/// scheduler, plus wall-clock throughput.
pub fn e12_runtime(mode: Mode) -> String {
    let instances = mode.trials(2000);
    let mut out = format!(
        "The thread runtime runs the identical protocol on std atomics. The OS\n\
         scheduler is far weaker than the model's adversaries, so agreement is\n\
         near-instant; this experiment checks correctness end-to-end and\n\
         measures decisions per second. {instances} instances per row.\n\n"
    );
    let mut table = Table::new(
        "E12: thread-runtime consensus",
        &["threads", "m", "violations", "mean stages", "decisions/sec"],
    );
    for &threads in &mode.cap(&[2usize, 4, 8], 3) {
        for &m in &[2u64, 64] {
            let mut violations = 0usize;
            let mut stages_total = 0usize;
            let start = Instant::now();
            for instance in 0..instances {
                let c = Arc::new(Consensus::builder().n(threads).values(m).build());
                let handles: Vec<_> = (0..threads as u64)
                    .map(|t| {
                        let c = Arc::clone(&c);
                        std::thread::spawn(move || {
                            let mut rng = SmallRng::seed_from_u64(instance as u64 * 100 + t);
                            c.decide(t % m, &mut rng)
                        })
                    })
                    .collect();
                let decisions: Vec<u64> = handles
                    .into_iter()
                    .map(|h| h.join().expect("no panics"))
                    .collect();
                let first = decisions[0];
                if decisions.iter().any(|&d| d != first) || first >= m {
                    violations += 1;
                }
                stages_total += c.stages_used();
            }
            let elapsed = start.elapsed().as_secs_f64();
            table.row(&[
                threads.to_string(),
                m.to_string(),
                violations.to_string(),
                format!("{:.2}", stages_total as f64 / instances as f64),
                format!("{:.0}", instances as f64 / elapsed),
            ]);
        }
    }
    let _ = writeln!(out, "{table}");
    out.push_str(
        "Zero violations expected; throughput is dominated by thread spawn/join\n\
         (each instance spawns fresh threads), so treat it as a lower bound.\n",
    );
    out
}
