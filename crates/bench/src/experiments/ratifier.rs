//! Ratifier experiments: E3.

use std::fmt::Write as _;

use mc_analysis::{theory, Table};
use mc_core::{CollectRatifier, Ratifier};
use mc_model::{properties, ObjectSpec};
use mc_quorums::verify;
use mc_quorums::{BinomialScheme, BitVectorScheme};
use mc_sim::adversary::RandomScheduler;
use mc_sim::harness::{self, inputs};
use mc_sim::EngineConfig;

use super::Mode;

/// E3 — Theorem 10: register and work costs of the m-valued ratifier.
pub fn e3_ratifier_costs(mode: Mode) -> String {
    let ms = mode.cap(&[2u64, 6, 16, 70, 256, 4096, 1 << 20], 5);
    let trials = mode.trials(200);
    let mut out = String::from(
        "Theorem 10: an m-valued ratifier needs only O(log m) registers and work.\n\
         binomial: ⌈lg m⌉ + Θ(log log m) registers (optimal, Bollobás/Thm 9);\n\
         bit-vector: 2⌈lg m⌉ + 1 registers; binary: 3 registers, ≤ 4 ops;\n\
         cheap-collect: 4 ops for any m (different model).\n\n",
    );

    let mut regs = Table::new(
        "E3a: registers vs m",
        &[
            "m",
            "⌈lg m⌉",
            "binomial",
            "bitvector (2⌈lg m⌉+1)",
            "binomial ops",
            "bitvector ops",
        ],
    );
    for &m in &ms {
        let binom = Ratifier::binomial(m);
        let bitv = Ratifier::bitvector(m);
        regs.row(&[
            m.to_string(),
            theory::ceil_lg(m).to_string(),
            binom.register_count().to_string(),
            bitv.register_count().to_string(),
            binom.individual_work_bound().to_string(),
            bitv.individual_work_bound().to_string(),
        ]);
    }
    let _ = writeln!(out, "{regs}");

    // Cross-intersection validity of the schemes behind the table.
    for &m in &ms {
        let b = BinomialScheme::for_capacity(m).expect("m > 0");
        let v = BitVectorScheme::for_capacity(m).expect("m > 0");
        if m <= 4096 {
            verify::check_cross_intersection(&b, 256).expect("binomial scheme valid");
            verify::check_cross_intersection(&v, 256).expect("bitvector scheme valid");
        } else {
            verify::check_cross_intersection_sampled(&b, 300, 7).expect("binomial scheme valid");
            verify::check_cross_intersection_sampled(&v, 300, 7).expect("bitvector scheme valid");
        }
    }
    let bollobas = verify::bollobas_sum(&BinomialScheme::with_pool(10), u64::MAX);
    let _ = writeln!(
        out,
        "Bollobás sum for the binomial scheme (k = 10): {bollobas:.6} — exactly 1,\n\
         witnessing that no scheme packs more values into the same registers.\n"
    );

    // Measured work + acceptance/coherence checks in the model.
    let n = 8;
    let mut work = Table::new(
        "E3b: measured ratifier work (n = 8, split inputs, random scheduler)",
        &[
            "m",
            "scheme",
            "indiv max",
            "bound",
            "acceptance",
            "coherence",
        ],
    );
    for &m in &ms {
        if m > 4096 {
            continue; // inputs::random with huge m is fine, but keep runtime sane
        }
        for ratifier in [Ratifier::binomial(m), Ratifier::bitvector(m)] {
            let bound = ratifier.individual_work_bound();
            let mut worst = 0;
            let mut acceptance_ok = true;
            let mut coherence_ok = true;
            for t in 0..trials as u64 {
                // Alternate split and unanimous inputs to exercise both
                // acceptance and conflict detection.
                let ins = if t % 2 == 0 {
                    inputs::random(n, m, t)
                } else {
                    inputs::unanimous(n, t % m)
                };
                let out = harness::run_object(
                    &ratifier,
                    &ins,
                    &mut RandomScheduler::new(t),
                    t,
                    &EngineConfig::default(),
                )
                .expect("run completes");
                worst = worst.max(out.metrics.individual_work());
                acceptance_ok &= properties::check_acceptance(&ins, &out.outputs).is_ok();
                coherence_ok &= properties::check_coherence(&out.outputs).is_ok();
            }
            work.row(&[
                m.to_string(),
                ratifier.name(),
                worst.to_string(),
                bound.to_string(),
                if acceptance_ok { "ok" } else { "VIOLATED" }.to_string(),
                if coherence_ok { "ok" } else { "VIOLATED" }.to_string(),
            ]);
        }
    }
    let _ = writeln!(out, "{work}");

    // The cheap-collect row (§6.2 item 4).
    let collect_config = EngineConfig::default().with_cheap_collect();
    let mut worst = 0;
    for t in 0..trials as u64 {
        let ins = inputs::random(n, 1 << 40, t);
        let res = harness::run_object(
            &CollectRatifier::new(),
            &ins,
            &mut RandomScheduler::new(t),
            t,
            &collect_config,
        )
        .expect("run completes");
        worst = worst.max(res.metrics.individual_work());
    }
    let _ = writeln!(
        out,
        "E3c: cheap-collect ratifier, m = 2^40: worst individual work = {worst} (paper: 4 ops\n\
         regardless of m, in the cheap-snapshot model).\n"
    );
    out
}
