//! Crash-tolerance experiments: E15.

use std::fmt::Write as _;

use mc_analysis::Table;
use mc_core::protocol::ConsensusBuilder;
use mc_model::{properties, ProcessId};
use mc_sim::adversary::RandomScheduler;
use mc_sim::harness::{self, inputs, run_with_crashes};
use mc_sim::EngineConfig;

use super::Mode;

/// E15 — wait-freedom: consensus tolerates up to n − 1 crash failures.
pub fn e15_crash_tolerance(mode: Mode) -> String {
    let trials = mode.trials(500);
    let n = 8;
    let mut out = format!(
        "§1: randomized shared-memory consensus \"can even tolerate up to n − 1\n\
         crash failures\". A crash is an adversary that never schedules the\n\
         process again; wait-freedom means survivors still decide. n = {n},\n\
         {trials} trials per row, crashes at random early steps, split inputs.\n\n"
    );
    let spec = ConsensusBuilder::binary().build();
    let mut table = Table::new(
        "E15: consensus under f crash failures",
        &[
            "f",
            "survivor decided",
            "safety violations",
            "survivor indiv mean",
            "total mean",
        ],
    );
    for f in [0usize, 1, 2, 4, 7] {
        let mut undecided = 0usize;
        let mut violations = 0usize;
        let mut indiv = Vec::new();
        let mut total = Vec::new();
        for t in 0..trials {
            let seed = t as u64 * 13 + f as u64;
            let ins = inputs::alternating(n, 2);
            // Crash the first f processes at staggered early steps.
            let crashes: Vec<(ProcessId, u64)> = (0..f)
                .map(|ix| (ProcessId(ix), (seed + ix as u64) % 12))
                .collect();
            let outcome = run_with_crashes(
                &spec,
                &ins,
                RandomScheduler::new(seed),
                &crashes,
                seed,
                &EngineConfig::default(),
            )
            .expect("run completes");
            let produced: Vec<_> = outcome.decisions.iter().copied().flatten().collect();
            if properties::check_validity(&ins, &produced).is_err()
                || properties::check_coherence(&produced).is_err()
            {
                violations += 1;
            }
            for (ix, d) in outcome.decisions.iter().enumerate() {
                if !outcome.crashed.contains(&ProcessId(ix))
                    && !d.map(|d| d.is_decided()).unwrap_or(false)
                {
                    undecided += 1;
                }
            }
            let survivor_work: Vec<u64> = outcome
                .metrics
                .per_process
                .iter()
                .enumerate()
                .filter(|(ix, _)| !outcome.crashed.contains(&ProcessId(*ix)))
                .map(|(_, &w)| w)
                .collect();
            indiv.push(survivor_work.iter().copied().max().unwrap_or(0));
            total.push(outcome.metrics.total_work());
        }
        let mean = |v: &[u64]| v.iter().map(|&x| x as f64).sum::<f64>() / v.len().max(1) as f64;
        table.row(&[
            f.to_string(),
            format!("{}/{}", trials * (n - f) - undecided, trials * (n - f)),
            violations.to_string(),
            format!("{:.2}", mean(&indiv)),
            format!("{:.1}", mean(&total)),
        ]);
    }
    let _ = writeln!(out, "{table}");

    // The extreme case: a lone survivor among n − 1 immediate crashes.
    let mut lone_decided = 0;
    let lone_trials = trials.min(200);
    for t in 0..lone_trials {
        let seed = t as u64;
        let ins = inputs::alternating(n, 2);
        let crashes: Vec<(ProcessId, u64)> = (0..n - 1).map(|ix| (ProcessId(ix), 0)).collect();
        let outcome = run_with_crashes(
            &spec,
            &ins,
            RandomScheduler::new(seed),
            &crashes,
            seed,
            &EngineConfig::default(),
        )
        .expect("run completes");
        let survivors = outcome.survivor_outputs();
        if survivors.len() == 1 && survivors[0].is_decided() {
            lone_decided += 1;
        }
    }
    let _ = writeln!(
        out,
        "lone-survivor stress (n − 1 = {} immediate crashes): survivor decided in\n\
         {lone_decided}/{lone_trials} runs — wait-freedom at the maximum failure bound.\n",
        n - 1
    );

    // Baseline context: the same work without crashes.
    let clean = harness::run_trials(
        &spec,
        trials.min(200),
        5,
        &EngineConfig::default(),
        |_| inputs::alternating(n, 2),
        |s| Box::new(RandomScheduler::new(s)),
    )
    .expect("runs complete");
    let _ = writeln!(
        out,
        "crash-free reference: indiv mean {:.2}, total mean {:.1}. Crashes cost\n\
         survivors nothing extra — often less, since dead processes stop racing.\n",
        clean.mean_individual_work(),
        clean.mean_total_work()
    );
    out
}
