//! Exhaustive-checking experiments: E13.

use std::fmt::Write as _;
use std::sync::Arc;

use mc_analysis::{theory, Table};
use mc_check::{CheckConfig, Explorer};
use mc_core::{Chain, FirstMoverConciliator, Ratifier, WriteSchedule};
use mc_model::ObjectSpec;

use super::Mode;

/// E13 — exact worst-case agreement probability and exhaustive safety at
/// small n, via the model checker.
pub fn e13_exact_small_n(mode: Mode) -> String {
    let delta = theory::impatient_agreement_lower_bound();
    let mut out = format!(
        "The mc-check explorer enumerates every schedule of the strongest\n\
         coin-blind adversary and every probabilistic-write coin outcome.\n\
         For n = 2 this yields the EXACT worst-case agreement probability δ*\n\
         of the impatient conciliator — to compare with Theorem 7's analytic\n\
         lower bound δ = {delta:.4}.\n\n"
    );

    // Exact δ* for a few schedules at n = 2.
    let mut exact = Table::new(
        "E13a: exact worst-case agreement δ* at n = 2 (split inputs)",
        &["schedule", "exact δ*", "paper bound", "paths"],
    );
    for (name, schedule) in [
        ("2^k/n (paper)", WriteSchedule::impatient()),
        ("4^k/n", WriteSchedule::geometric(1.0, 4.0)),
        ("8^k/n", WriteSchedule::geometric(1.0, 8.0)),
    ] {
        let spec = FirstMoverConciliator::with_schedule(schedule);
        let value = Explorer::new(spec, vec![0, 1])
            .worst_case_agreement()
            .expect("n = 2 is fully explorable");
        assert_eq!(value.truncated, 0, "value must be exact");
        exact.row(&[
            name.to_string(),
            format!("{:.4}", value.probability),
            format!("{delta:.4}"),
            value.complete_paths.to_string(),
        ]);
    }
    let _ = writeln!(out, "{exact}");

    // Exhaustive safety sweeps.
    let mut safety = Table::new(
        "E13b: exhaustive safety (validity + coherence [+ acceptance])",
        &["object", "inputs", "paths", "result"],
    );
    let ratifier_cfg = CheckConfig {
        check_acceptance: true,
        ..CheckConfig::default()
    };
    let sweeps: Vec<(Arc<dyn ObjectSpec>, Vec<u64>, CheckConfig)> = vec![
        (
            Arc::new(Ratifier::binary()),
            vec![0, 1],
            ratifier_cfg.clone(),
        ),
        (
            Arc::new(Ratifier::binary()),
            vec![0, 1, 1],
            ratifier_cfg.clone(),
        ),
        (
            Arc::new(Ratifier::binomial(4)),
            vec![1, 3, 2],
            ratifier_cfg.clone(),
        ),
        (
            Arc::new(Chain::pair(
                Arc::new(FirstMoverConciliator::impatient()),
                Arc::new(Ratifier::binary()),
            )),
            vec![0, 1],
            CheckConfig::default(),
        ),
    ];
    let sweeps = if matches!(mode, Mode::Quick) {
        sweeps.into_iter().take(2).collect::<Vec<_>>()
    } else {
        sweeps
    };
    for (spec, inputs, config) in sweeps {
        struct Wrap(Arc<dyn ObjectSpec>);
        impl ObjectSpec for Wrap {
            fn instantiate(
                &self,
                ctx: &mut mc_model::InstantiateCtx<'_>,
            ) -> Arc<dyn mc_model::DecidingObject> {
                self.0.instantiate(ctx)
            }
            fn name(&self) -> String {
                self.0.name()
            }
        }
        let name = spec.name();
        let report = Explorer::new(Wrap(spec), inputs.clone())
            .with_config(config)
            .verify_safety()
            .expect("explorable");
        safety.row(&[
            name,
            format!("{inputs:?}"),
            (report.complete_paths + report.truncated_paths).to_string(),
            if report.is_exhaustive_pass() {
                "PASS (exhaustive)".to_string()
            } else if let Some((path, v)) = &report.violation {
                format!("VIOLATION {v} at {path:?}")
            } else {
                format!("pass with {} truncated", report.truncated_paths)
            },
        ]);
    }
    let _ = writeln!(out, "{safety}");
    out.push_str(
        "δ* at n = 2 is 4.5× the closed-form bound — Theorem 7's analysis is a\n\
         worst-case-over-all-n guarantee, loose at small n exactly as its\n\
         union-bound proof suggests. At n = 2 all geometric schedules coincide\n\
         (the first attempt already has probability 1/2, the second saturates),\n\
         so their exact δ* is identical; the schedule trade-off only opens up\n\
         at larger n, where E11 measures it statistically.\n",
    );
    out
}
