//! Experiment harness reproducing every quantitative claim of the paper.
//!
//! The paper is a theory paper: its "evaluation" is Theorems 5–10 plus the
//! headline asymptotics of §1/§7. Each claim is reproduced as a numbered
//! experiment (see `DESIGN.md` §4 for the index); the [`experiments`]
//! module measures them in the simulator and prints paper-vs-measured
//! tables. The `experiments` binary drives them; `EXPERIMENTS.md` records
//! the results.
//!
//! Criterion benches (wall-clock, in `benches/`) complement the
//! operation-count tables with real-time costs on both substrates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

pub use experiments::{run_experiment, Mode, EXPERIMENTS};
