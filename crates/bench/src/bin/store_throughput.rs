//! Measures the replicated store end to end: commands submitted through
//! [`mc_store::ReplicatedStore`] ride consensus-decided log slots in
//! batches, so the interesting questions are (a) how many *applied*
//! commands per second the pipeline sustains when producers never wait
//! (open loop), and (b) what a synchronous client actually experiences
//! per call when it always waits (closed loop).
//!
//! ```text
//! store_throughput [--sessions <N>] [--closed-ops <K>] [--trials <T>]
//!                  [--sequencers <P>] [--min-ops <OPS>] [--max-p99-ms <MS>]
//!                  [--out <path>]
//! ```
//!
//! **Open loop** drives `--sessions` commands (default 1.25M), every one
//! from a *distinct* client id with sequence number 1, so the run also
//! exercises the session table at millions-of-sessions scale: each apply
//! inserts a fresh session entry rather than hitting a warm one. Keys
//! follow a zipfian distribution (exponent 1.0 over 1024 keys) and the
//! command mix is 50% `Get` / 35% `Put` / 10% `Cas` / 5% `Delete` — reads
//! here go through the log like writes, which is the store's linearizable
//! slow path. Each producer pre-generates its script (the measured figure
//! is the store, not the load generator), pushes chunks through
//! `submit_batch`, and reaps handles only once more than `OPEN_WINDOW`
//! are outstanding — old handles are long since applied, and the cap
//! keeps the live pending/cell working set cache-resident instead of
//! letting a million cold cells thrash DRAM, which matters on the
//! single-core runners CI uses. Throughput is cross-checked against
//! telemetry (`commands_applied` and `sessions_created` must both equal
//! the offered count — a "fast" store that dropped or double-applied
//! commands is a bug, not a win).
//!
//! **Closed loop** runs 8 synchronous [`mc_store::StoreClient`] sessions,
//! each timing every `call` (submit → decided slot → applied → response)
//! under the same zipfian mixed workload, plus lease-based fast reads
//! timed separately. p50/p99 come from the full per-op sample set.
//!
//! Each leg runs `--trials` times; the open-loop leg is represented by
//! its fastest trial and the closed-loop leg by its lowest-p99 trial
//! (interference on a shared runner only ever slows a trial down). Two
//! gates are enforced as process failure so CI catches regressions: the
//! open-loop leg must sustain `--min-ops` applied commands/sec (default
//! 1,000,000 — deliberately below the ~2.5–3M/s an idle single-core
//! machine measures) and the closed-loop call p99 must stay under
//! `--max-p99-ms` (default 20ms — far above the sub-millisecond idle
//! figure; the gate only has to catch batching-stopped-flowing
//! regressions without flaking).
//!
//! Writes a JSON report (default `BENCH_store_throughput.json`) in the
//! `BENCH_*_overhead.json` family format.

use std::process::ExitCode;
use std::sync::{Arc, Barrier};
use std::time::Instant;

use mc_store::{KvCommand, KvStore, ReplicatedStore};
use mc_telemetry::json::Obj;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

const PRODUCERS: u64 = 2;
const CLOSED_CLIENTS: u64 = 8;
/// Producer-side chunk: one intake lock per this many commands.
const SUBMIT_CHUNK: usize = 1024;
/// Open-loop in-flight cap per producer: handles older than this are
/// reaped (long since applied), keeping the live pending/cell working
/// set cache-resident instead of letting 1M+ cells go cold in DRAM.
const OPEN_WINDOW: usize = 16 * 1024;
const KEYS: usize = 1024;
const ZIPF_EXPONENT: f64 = 1.0;
/// Every Nth closed-loop op also times a lease-based fast read.
const FAST_READ_EVERY: u64 = 4;

/// Zipfian sampler over `0..keys` via a precomputed CDF — key 0 is the
/// hottest, so concurrent sessions collide on the same entries the way
/// real skewed workloads do.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(keys: usize, exponent: f64) -> Self {
        let mut cdf = Vec::with_capacity(keys);
        let mut total = 0.0;
        for i in 0..keys {
            total += 1.0 / ((i + 1) as f64).powf(exponent);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut SmallRng) -> u64 {
        let u = rng.random_range(0u64..(1u64 << 53)) as f64 / (1u64 << 53) as f64;
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

/// One command from the 50/35/10/5 Get/Put/Cas/Delete mix on a zipfian key.
fn next_command(rng: &mut SmallRng, zipf: &Zipf) -> KvCommand {
    let key = zipf.sample(rng);
    match rng.random_range(0u32..100) {
        0..=49 => KvCommand::Get { key },
        50..=84 => KvCommand::Put {
            key,
            value: rng.random_range(0u64..1_000_000),
        },
        85..=94 => KvCommand::Cas {
            key,
            expect: Some(rng.random_range(0u64..1_000_000)),
            value: rng.random_range(0u64..1_000_000),
        },
        _ => KvCommand::Delete { key },
    }
}

/// Resident set size in kilobytes from `/proc/self/status`, or `None` on
/// platforms without procfs.
fn rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let ix = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[ix]
}

struct OpenResult {
    ops_per_sec: f64,
    learned_slots: u64,
    snapshots: u64,
}

/// Open-loop leg: `sessions` commands, each from a distinct client id,
/// submitted without waiting; the clock stops when the last response is
/// filled. Returns applied commands/sec plus pipeline shape figures.
fn run_open(sessions: u64, sequencers: usize, trial: u64) -> Result<OpenResult, String> {
    let store = Arc::new(
        ReplicatedStore::<KvStore>::builder()
            .sequencers(sequencers)
            .batch_commands(4096)
            .max_inflight_batches(1024)
            .snapshot_every(1 << 16)
            .expected_sessions(sessions as usize)
            .seed(0x570E + trial)
            .build(),
    );
    let zipf = Zipf::new(KEYS, ZIPF_EXPONENT);
    let per_producer = sessions / PRODUCERS;
    let barrier = Arc::new(Barrier::new(PRODUCERS as usize + 1));
    let threads: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let store = Arc::clone(&store);
            let barrier = Arc::clone(&barrier);
            // Generate the whole workload before the clock starts: the
            // measured figure is the store's pipeline, not the synthetic
            // load generator. Client ids partition 1..=sessions, so every
            // command opens a brand-new session.
            let mut rng = SmallRng::seed_from_u64(0x570E_0000 + trial * PRODUCERS + p);
            let base = 1 + p * per_producer;
            let script: Vec<(u64, u64, KvCommand)> = (0..per_producer)
                .map(|i| (base + i, 1, next_command(&mut rng, &zipf)))
                .collect();
            std::thread::spawn(move || {
                let mut handles =
                    std::collections::VecDeque::with_capacity(OPEN_WINDOW + SUBMIT_CHUNK);
                barrier.wait();
                for chunk in script.chunks(SUBMIT_CHUNK) {
                    handles.extend(store.submit_batch(chunk.iter().copied()));
                    while handles.len() > OPEN_WINDOW {
                        let handle = handles.pop_front().expect("len checked");
                        std::hint::black_box(handle.wait().expect("every command applies"));
                    }
                }
                for handle in handles {
                    std::hint::black_box(handle.wait().expect("every command applies"));
                }
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    for t in threads {
        t.join().expect("producer thread");
    }
    let offered = per_producer * PRODUCERS;
    let ops_per_sec = offered as f64 / start.elapsed().as_secs_f64();

    let telemetry = store.telemetry();
    let applied = telemetry.commands_applied();
    let created = telemetry.sessions_created();
    if applied != offered || created != offered {
        return Err(format!(
            "open loop applied {applied} commands over {created} sessions, \
             expected {offered} of each — the store lost or double-applied work"
        ));
    }
    let learned_slots = store.learned_slots() as u64;
    let snapshots = telemetry.store_snapshots();
    let mut store = Arc::into_inner(store).expect("all producers joined");
    store.shutdown();
    Ok(OpenResult {
        ops_per_sec,
        learned_slots,
        snapshots,
    })
}

struct ClosedResult {
    call_p50_ns: u64,
    call_p99_ns: u64,
    fast_read_p50_ns: u64,
    fast_read_p99_ns: u64,
    fast_reads: u64,
}

/// Closed-loop leg: synchronous sessions that time every call and every
/// lease-based fast read. Returns the latency quantiles.
fn run_closed(ops_per_client: u64, sequencers: usize, trial: u64) -> ClosedResult {
    let store = Arc::new(
        ReplicatedStore::<KvStore>::builder()
            .sequencers(sequencers)
            .batch_commands(64)
            .seed(0xC105ED + trial)
            .build(),
    );
    let zipf = Arc::new(Zipf::new(KEYS, ZIPF_EXPONENT));
    let barrier = Arc::new(Barrier::new(CLOSED_CLIENTS as usize));
    let threads: Vec<_> = (0..CLOSED_CLIENTS)
        .map(|c| {
            let store = Arc::clone(&store);
            let zipf = Arc::clone(&zipf);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut session = store.client();
                let mut rng = SmallRng::seed_from_u64(0xC105_0000 + trial * CLOSED_CLIENTS + c);
                let mut calls = Vec::with_capacity(ops_per_client as usize);
                let mut reads = Vec::new();
                barrier.wait();
                for i in 0..ops_per_client {
                    let command = next_command(&mut rng, &zipf);
                    let start = Instant::now();
                    std::hint::black_box(session.call(command).expect("call applies"));
                    calls.push(start.elapsed().as_nanos() as u64);
                    if i % FAST_READ_EVERY == 0 {
                        let key = zipf.sample(&mut rng);
                        let start = Instant::now();
                        std::hint::black_box(session.read(|kv| kv.get(key)));
                        reads.push(start.elapsed().as_nanos() as u64);
                    }
                }
                (calls, reads)
            })
        })
        .collect();
    let mut calls = Vec::new();
    let mut reads = Vec::new();
    for t in threads {
        let (c, r) = t.join().expect("client thread");
        calls.extend(c);
        reads.extend(r);
    }
    calls.sort_unstable();
    reads.sort_unstable();
    let fast_reads = store.telemetry().fast_reads();
    let mut store = Arc::into_inner(store).expect("all clients joined");
    store.shutdown();
    ClosedResult {
        call_p50_ns: percentile(&calls, 0.50),
        call_p99_ns: percentile(&calls, 0.99),
        fast_read_p50_ns: percentile(&reads, 0.50),
        fast_read_p99_ns: percentile(&reads, 0.99),
        fast_reads,
    }
}

#[allow(clippy::too_many_arguments)]
fn run(
    sessions: u64,
    closed_ops: u64,
    trials: u64,
    sequencers: usize,
    min_ops: f64,
    max_p99_ms: f64,
    out_path: &str,
) -> Result<(), String> {
    eprintln!(
        "store throughput: open loop {sessions} distinct sessions x {PRODUCERS} producers, \
         closed loop {CLOSED_CLIENTS} clients x {closed_ops} calls, \
         {sequencers} sequencers, best of {trials} trials"
    );

    // Best-of-N per leg: wall-clock throughput and tail latency are the
    // quantities most distorted by a busy runner, and interference only
    // ever makes a trial worse, so the best trial is the most faithful.
    let mut open_best: Option<OpenResult> = None;
    for trial in 0..trials {
        let result = run_open(sessions, sequencers, trial)?;
        eprintln!(
            "  open trial {trial}: {:.0} applied/sec over {} slots",
            result.ops_per_sec, result.learned_slots
        );
        if open_best
            .as_ref()
            .is_none_or(|b| result.ops_per_sec > b.ops_per_sec)
        {
            open_best = Some(result);
        }
    }
    let open = open_best.expect("at least one trial");

    let mut closed_best: Option<ClosedResult> = None;
    for trial in 0..trials {
        let result = run_closed(closed_ops, sequencers, trial);
        eprintln!(
            "  closed trial {trial}: call p50 {}ns p99 {}ns",
            result.call_p50_ns, result.call_p99_ns
        );
        if closed_best
            .as_ref()
            .is_none_or(|b| result.call_p99_ns < b.call_p99_ns)
        {
            closed_best = Some(result);
        }
    }
    let closed = closed_best.expect("at least one trial");

    let offered = (sessions / PRODUCERS) * PRODUCERS;
    let mean_slot_commands = if open.learned_slots > 0 {
        offered as f64 / open.learned_slots as f64
    } else {
        0.0
    };
    let mut report = Obj::new();
    report
        .str_field("bench", "store_throughput")
        .u64_field("distinct_sessions", offered)
        .u64_field("producers", PRODUCERS)
        .u64_field("closed_clients", CLOSED_CLIENTS)
        .u64_field("closed_ops_per_client", closed_ops)
        .u64_field("sequencers", sequencers as u64)
        .u64_field("trials", trials)
        .f64_field("open_ops_per_sec", open.ops_per_sec)
        .u64_field("open_learned_slots", open.learned_slots)
        .f64_field("open_mean_slot_commands", mean_slot_commands)
        .u64_field("open_snapshots", open.snapshots)
        .u64_field("closed_call_p50_ns", closed.call_p50_ns)
        .u64_field("closed_call_p99_ns", closed.call_p99_ns)
        .u64_field("fast_read_p50_ns", closed.fast_read_p50_ns)
        .u64_field("fast_read_p99_ns", closed.fast_read_p99_ns)
        .u64_field("fast_reads_served", closed.fast_reads)
        .f64_field("gate_min_ops_per_sec", min_ops)
        .f64_field("gate_max_p99_ms", max_p99_ms)
        .u64_field("rss_kb", rss_kb().unwrap_or(0));
    let json = report.finish();
    println!("{json}");
    std::fs::write(out_path, format!("{json}\n"))
        .map_err(|e| format!("writing {out_path}: {e}"))?;
    eprintln!("report written to {out_path}");

    if open.ops_per_sec < min_ops {
        return Err(format!(
            "open loop sustained only {:.0} applied commands/sec \
             (gate {min_ops:.0}) — the apply pipeline regressed",
            open.ops_per_sec
        ));
    }
    let p99_ms = closed.call_p99_ns as f64 / 1e6;
    if p99_ms > max_p99_ms {
        return Err(format!(
            "closed loop call p99 was {p99_ms:.2}ms (gate {max_p99_ms:.2}ms) \
             — synchronous callers are stalling"
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut sessions = 1_250_000u64;
    let mut closed_ops = 4_000u64;
    let mut trials = 2u64;
    let mut sequencers = 2usize;
    let mut min_ops = 1_000_000f64;
    let mut max_p99_ms = 20f64;
    let mut out_path = "BENCH_store_throughput.json".to_string();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--sessions" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(v)) if v >= PRODUCERS => sessions = v,
                _ => {
                    eprintln!("--sessions needs an integer >= {PRODUCERS}");
                    return ExitCode::FAILURE;
                }
            },
            "--closed-ops" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(v)) if v > 0 => closed_ops = v,
                _ => {
                    eprintln!("--closed-ops needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--trials" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(v)) if v > 0 => trials = v,
                _ => {
                    eprintln!("--trials needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--sequencers" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(v)) if v > 0 => sequencers = v,
                _ => {
                    eprintln!("--sequencers needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--min-ops" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(v)) if v > 0.0 => min_ops = v,
                _ => {
                    eprintln!("--min-ops needs a positive number");
                    return ExitCode::FAILURE;
                }
            },
            "--max-p99-ms" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(v)) if v > 0.0 => max_p99_ms = v,
                _ => {
                    eprintln!("--max-p99-ms needs a positive number");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown option {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    match run(
        sessions, closed_ops, trials, sequencers, min_ops, max_p99_ms, &out_path,
    ) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
