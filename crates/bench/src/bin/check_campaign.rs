//! The model-checking campaign CI gates on: the graph engine sweeps every
//! composed protocol at n = 3 over the full adversary-choice tree, the
//! path engine cross-validates every n = 2 verdict, and the lab replays
//! the negative control's minimal counterexample through real runtime
//! objects.
//!
//! ```text
//! check_campaign [--state-budget <N>] [--out <path>]
//! ```
//!
//! Per (protocol, input-vector) cell the graph engine reports distinct
//! canonical states, transitions, dedup hits, and truncation; the campaign
//! aggregates states/sec, the dedup ratio, and the symmetry savings
//! (states without reduction / states with it, on a split input). Exits
//! nonzero — after writing the report — if any engine disagrees with its
//! oracle, any protocol violates safety, the negative control's race goes
//! unfound (or stops replaying), or the state budget is exhausted.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use mc_check::{
    CheckConfig, Explorer, GraphConfig, GraphExplorer, GraphReport, PathEvent, Verdict,
};
use mc_core::{
    BoundedChain, Chain, CollectRatifier, ConsensusBuilder, FirstMoverConciliator, Ratifier,
};
use mc_lab::{Lab, RacyConsensus, RacySpec};
use mc_model::{ObjectSpec, Value};
use mc_telemetry::json::Obj;

struct Entry {
    spec: Arc<dyn ObjectSpec>,
    check_acceptance: bool,
    max_steps: usize,
    /// Protocols that terminate on every schedule must explore without
    /// truncation; the full bounded consensus cannot (its CIL fallback
    /// livelocks under an adversarial schedule), so only safety is gated.
    expect_exhaustive: bool,
    /// Cross-validate n = 2 verdicts against the path engine. Off only
    /// where path enumeration is infeasible.
    path_oracle: bool,
}

fn matrix() -> Vec<Entry> {
    let impatient = || Arc::new(FirstMoverConciliator::impatient()) as Arc<dyn ObjectSpec>;
    vec![
        Entry {
            spec: Arc::new(Ratifier::binary()),
            check_acceptance: true,
            max_steps: 64,
            expect_exhaustive: true,
            path_oracle: true,
        },
        Entry {
            spec: Arc::new(Ratifier::binomial(4)),
            check_acceptance: true,
            max_steps: 64,
            expect_exhaustive: true,
            path_oracle: true,
        },
        Entry {
            spec: Arc::new(Ratifier::bitvector(4)),
            check_acceptance: true,
            max_steps: 64,
            expect_exhaustive: true,
            path_oracle: true,
        },
        Entry {
            spec: Arc::new(CollectRatifier::new()),
            check_acceptance: true,
            max_steps: 64,
            expect_exhaustive: true,
            path_oracle: true,
        },
        Entry {
            spec: impatient(),
            check_acceptance: false,
            max_steps: 64,
            expect_exhaustive: true,
            path_oracle: true,
        },
        Entry {
            spec: Arc::new(Chain::pair(impatient(), Arc::new(Ratifier::binary()))),
            check_acceptance: false,
            max_steps: 64,
            expect_exhaustive: true,
            path_oracle: true,
        },
        Entry {
            spec: Arc::new(BoundedChain::new(
                "campaign-bounded",
                move |_| Arc::new(FirstMoverConciliator::impatient()) as Arc<dyn ObjectSpec>,
                1,
                Arc::new(Ratifier::binary()),
            )),
            check_acceptance: false,
            max_steps: 64,
            expect_exhaustive: true,
            path_oracle: true,
        },
        Entry {
            spec: Arc::new(ConsensusBuilder::binary().bounded(1).build()),
            check_acceptance: false,
            max_steps: 14,
            expect_exhaustive: false,
            path_oracle: true,
        },
    ]
}

fn binary_vectors(n: usize) -> Vec<Vec<Value>> {
    (0..1u64 << n)
        .map(|bits| (0..n).map(|i| (bits >> i) & 1).collect())
        .collect()
}

fn graph_report(
    entry: &Entry,
    inputs: &[Value],
    symmetry: bool,
    budget: usize,
) -> Result<GraphReport, String> {
    GraphExplorer::new(Arc::clone(&entry.spec), inputs.to_vec())
        .with_config(GraphConfig {
            max_steps: entry.max_steps,
            max_states: budget,
            check_acceptance: entry.check_acceptance,
            symmetry,
            ..GraphConfig::default()
        })
        .verify_safety()
        .map_err(|e| {
            format!(
                "{} on {inputs:?}: graph engine aborted: {e:?} (state budget {budget})",
                entry.spec.name()
            )
        })
}

fn path_verdict(entry: &Entry, inputs: &[Value]) -> Verdict {
    Explorer::new(Arc::clone(&entry.spec), inputs.to_vec())
        .with_config(CheckConfig {
            max_steps: entry.max_steps,
            check_acceptance: entry.check_acceptance,
            ..CheckConfig::default()
        })
        .verify_safety()
        .unwrap_or_else(|e| panic!("{}: path engine aborted: {e:?}", entry.spec.name()))
        .verdict()
}

/// The negative control: the graph engine must find RacySpec's n = 3 race,
/// reconstruct a minimal 5-event script, and the lab must replay it to the
/// same disagreement on the real runtime object.
fn negative_control(budget: usize) -> Result<usize, String> {
    let inputs = vec![0u64, 1, 1];
    let report = GraphExplorer::new(RacySpec::new(), inputs.clone())
        .with_config(GraphConfig {
            max_states: budget,
            ..GraphConfig::default()
        })
        .verify_safety()
        .map_err(|e| format!("racy spec aborted: {e:?}"))?;
    let Some((script, violation)) = report.violation else {
        return Err("the race went unfound at n = 3".into());
    };
    if script.len() != 5 || script.iter().any(|e| !matches!(e, PathEvent::Sched(_))) {
        return Err(format!("counterexample not minimal: {script:?}"));
    }
    let lab = Lab::replay(3, &script, 10_000);
    let racy = RacyConsensus::new_in(&lab.memory());
    let replayed = lab
        .run(0, |pid, _| racy.decide(inputs[pid]))
        .map_err(|e| format!("lab replay failed: {e}"))?;
    let decided: Vec<Option<u64>> = replayed.decisions;
    let mut kinds = decided.iter().flatten().collect::<Vec<_>>();
    kinds.sort_unstable();
    kinds.dedup();
    if kinds.len() < 2 {
        return Err(format!(
            "replay lost the disagreement ({violation:?} vs {decided:?})"
        ));
    }
    Ok(script.len())
}

fn main() -> ExitCode {
    let mut budget: usize = 2_000_000;
    let mut out_path = "BENCH_check_campaign.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--state-budget" => {
                budget = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--state-budget <N>");
            }
            "--out" => {
                out_path = args.next().expect("--out <path>");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: check_campaign [--state-budget <N>] [--out <path>]");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut pass = true;
    let mut rows: Vec<String> = Vec::new();
    let mut total_states = 0u64;
    let mut total_transitions = 0u64;
    let mut total_dedup = 0u64;
    let started = Instant::now();

    for entry in matrix() {
        let name = entry.spec.name();

        // n = 2 cross-validation against the path-engine oracle.
        let mut oracle_agreed = true;
        if entry.path_oracle {
            for inputs in binary_vectors(2) {
                let path = path_verdict(&entry, &inputs);
                match graph_report(&entry, &inputs, true, budget) {
                    Ok(report) if path == report.verdict() => {}
                    Ok(report) => {
                        eprintln!(
                            "ORACLE DISAGREEMENT {name} on {inputs:?}: {path:?} vs {:?}",
                            report.verdict()
                        );
                        oracle_agreed = false;
                        pass = false;
                    }
                    Err(msg) => {
                        eprintln!("ABORT {msg}");
                        oracle_agreed = false;
                        pass = false;
                    }
                }
            }
        }

        // The full n = 3 sweep under the graph engine.
        let mut states = 0u64;
        let mut transitions = 0u64;
        let mut dedup_hits = 0u64;
        let mut max_depth = 0u64;
        let mut group_size = 0u64;
        let mut violations = 0u64;
        let mut truncated = 0u64;
        let t0 = Instant::now();
        for inputs in binary_vectors(3) {
            let report = match graph_report(&entry, &inputs, true, budget) {
                Ok(report) => report,
                Err(msg) => {
                    eprintln!("ABORT {msg}");
                    pass = false;
                    continue;
                }
            };
            states += report.distinct_states as u64;
            transitions += report.transitions as u64;
            dedup_hits += report.dedup_hits as u64;
            max_depth = max_depth.max(report.depth as u64);
            group_size = group_size.max(report.group_size as u64);
            truncated += report.truncated_states as u64;
            if let Some((_, violation)) = &report.violation {
                eprintln!("VIOLATION {name} on {inputs:?}: {violation:?}");
                violations += 1;
                pass = false;
            } else if entry.expect_exhaustive && !report.is_exhaustive_pass() {
                eprintln!(
                    "TRUNCATED {name} on {inputs:?}: {} states over the step bound",
                    report.truncated_states
                );
                pass = false;
            }
        }
        let elapsed = t0.elapsed().as_secs_f64();

        // Symmetry savings on the split input, the shape the reduction is
        // for. Both runs must reach the same verdict.
        let split = vec![0, 1, 1];
        let savings = match (
            graph_report(&entry, &split, true, budget),
            graph_report(&entry, &split, false, budget),
        ) {
            (Ok(with_sym), Ok(without_sym)) => {
                if with_sym.verdict() != without_sym.verdict() {
                    eprintln!("SYMMETRY DIVERGENCE {name} on {split:?}");
                    pass = false;
                }
                without_sym.distinct_states as f64 / with_sym.distinct_states.max(1) as f64
            }
            (with_sym, without_sym) => {
                for leg in [with_sym, without_sym] {
                    if let Err(msg) = leg {
                        eprintln!("ABORT {msg}");
                    }
                }
                pass = false;
                f64::NAN
            }
        };

        total_states += states;
        total_transitions += transitions;
        total_dedup += dedup_hits;

        let states_per_sec = states as f64 / elapsed.max(1e-9);
        let dedup_ratio = dedup_hits as f64 / (dedup_hits + states).max(1) as f64;
        let mut row = Obj::new();
        row.str_field("protocol", &name)
            .u64_field("n3_states", states)
            .u64_field("n3_transitions", transitions)
            .u64_field("n3_dedup_hits", dedup_hits)
            .u64_field("n3_truncated", truncated)
            .u64_field("n3_max_depth", max_depth)
            .u64_field("group_size", group_size)
            .u64_field("violations", violations)
            .f64_field("states_per_sec", states_per_sec)
            .f64_field("dedup_ratio", dedup_ratio)
            .f64_field("symmetry_savings", savings)
            .bool_field("path_oracle_checked", entry.path_oracle)
            .bool_field("path_oracle_agreed", oracle_agreed);
        let row = row.finish();
        println!("{row}");
        rows.push(row);
        eprintln!(
            "{name}: {states} states, {:.0} states/s, dedup {:.1}%, symmetry x{savings:.2}",
            states_per_sec,
            dedup_ratio * 100.0
        );
    }

    let control = negative_control(budget);
    if let Err(reason) = &control {
        eprintln!("NEGATIVE CONTROL FAILED: {reason}");
        pass = false;
    }

    let mut report = Obj::new();
    report
        .str_field("bench", "check_campaign")
        .u64_field("state_budget", budget as u64)
        .u64_field("total_states", total_states)
        .u64_field("total_transitions", total_transitions)
        .u64_field("total_dedup_hits", total_dedup)
        .f64_field("elapsed_secs", started.elapsed().as_secs_f64())
        .u64_field(
            "counterexample_len",
            control.as_ref().map(|&l| l as u64).unwrap_or(0),
        )
        .raw_field("protocols", &format!("[{}]", rows.join(",")))
        .bool_field("pass", pass);
    let json = report.finish();
    if let Err(e) = std::fs::write(&out_path, format!("{json}\n")) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }

    if pass {
        eprintln!("check campaign: PASS ({out_path})");
        ExitCode::SUCCESS
    } else {
        eprintln!("check campaign: FAIL ({out_path})");
        ExitCode::FAILURE
    }
}
