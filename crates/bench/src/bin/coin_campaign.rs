//! The shared-coin portfolio campaign CI gates on: every coin in the
//! portfolio is measured against every adversary class it claims to
//! tolerate, and the measured per-side agreement parameter δ̂ is reconciled
//! with `mc-analysis::theory`'s closed-form lower bounds.
//!
//! ```text
//! coin_campaign [--trials <N>] [--state-budget <N>] [--out <path>]
//! ```
//!
//! Three kinds of cells:
//!
//! * **Voting-coin cells** — `VotingSharedCoin` with quorum factors 1 and 4,
//!   crossed with oblivious schedulers (random, PCT, round-robin) and the
//!   adaptive `SplitKeeper`. Each cell's total agreement rate must clear
//!   twice the per-side theory bound (Wilson 95% lower bound), and neither
//!   side's rate may statistically refute the per-side bound.
//! * **Local-coin cell** — `n` independent local flips have an *exact*
//!   agreement probability `2^{1−n}`; the measured rate's Wilson interval
//!   must contain it. No adversary column: the local coin is only a coin
//!   against an oblivious adversary, and scheduling cannot change the
//!   distribution of independent flips.
//! * **Graph certificates** — with the vote streams pinned
//!   (`CoinPolicy::Fixed`), the graph engine exhaustively certifies
//!   validity and coherence of `CoinConciliator(VotingSharedCoin)` at
//!   n = 3 over every schedule and every binary input vector, and of the
//!   full `(coin-conciliator; ratifier)` chain at n = 2.
//!
//! Exits nonzero — after writing the report — if any gate fails.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use mc_analysis::{theory, wilson_interval};
use mc_check::{CoinPolicy, GraphConfig, GraphExplorer};
use mc_core::{Chain, CoinConciliator, Ratifier, VotingSharedCoin};
use mc_model::{ObjectSpec, Value};
use mc_sim::adversary::{RandomScheduler, RoundRobin, SplitKeeper};
use mc_sim::harness::{self, inputs};
use mc_sim::sched::PctScheduler;
use mc_sim::{Adversary, EngineConfig};
use mc_telemetry::json::Obj;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

const N: usize = 3;

struct AdversaryClass {
    name: &'static str,
    adaptive: bool,
    make: fn(u64) -> Box<dyn Adversary>,
}

fn adversary_classes() -> Vec<AdversaryClass> {
    vec![
        AdversaryClass {
            name: "random",
            adaptive: false,
            make: |seed| Box::new(RandomScheduler::new(seed)),
        },
        AdversaryClass {
            name: "pct",
            adaptive: false,
            make: |seed| Box::new(PctScheduler::new(3, 2_000, seed)),
        },
        AdversaryClass {
            name: "round-robin",
            adaptive: false,
            make: |_| Box::new(RoundRobin::new()),
        },
        AdversaryClass {
            name: "split-keeper",
            adaptive: true,
            make: |seed| Box::new(SplitKeeper::new(seed)),
        },
    ]
}

struct CellOutcome {
    row: String,
    pass: bool,
}

/// Measures one (voting coin, adversary class) cell and gates δ̂ against
/// the theory bound for that adversary class.
fn voting_cell(
    quorum_factor: u32,
    class: &AdversaryClass,
    trials: usize,
    seed_base: u64,
) -> CellOutcome {
    let spec = VotingSharedCoin::with_quorum_factor(quorum_factor).expect("positive factor");
    let config = EngineConfig::default();
    let mut zeros = 0usize;
    let mut ones = 0usize;
    let mut total_work = 0u64;
    for trial in 0..trials {
        let seed = seed_base.wrapping_add((trial as u64).wrapping_mul(0x9E37_79B9));
        let mut adversary = (class.make)(seed);
        let out = harness::run_object(
            &spec,
            &inputs::unanimous(N, 0),
            adversary.as_mut(),
            seed,
            &config,
        )
        .expect("voting coin must terminate");
        total_work += out.metrics.total_work();
        if out.agreed() {
            match out.values()[0] {
                0 => zeros += 1,
                1 => ones += 1,
                v => panic!("non-bit coin value {v}"),
            }
        }
    }

    let bound = if class.adaptive {
        theory::voting_coin_adaptive_delta_lower_bound(quorum_factor)
    } else {
        theory::voting_coin_delta_lower_bound(quorum_factor)
    };
    let agreement = wilson_interval(zeros + ones, trials);
    let zero_side = wilson_interval(zeros, trials);
    let one_side = wilson_interval(ones, trials);
    // δ per side implies total agreement ≥ 2δ; the Wilson lower bound of
    // the measured total must clear that. Per side the bound is only
    // checked as "not refuted" (upper bound above δ): the adversary is
    // free to bias *which* side wins, just not to push both below δ.
    let total_ok = agreement.low >= 2.0 * bound;
    let sides_ok = zero_side.high >= bound && one_side.high >= bound;
    let pass = total_ok && sides_ok;

    let mut row = Obj::new();
    row.str_field("cell", "voting")
        .u64_field("quorum_factor", u64::from(quorum_factor))
        .str_field("adversary", class.name)
        .bool_field("adaptive", class.adaptive)
        .u64_field("trials", trials as u64)
        .u64_field("zero_agreements", zeros as u64)
        .u64_field("one_agreements", ones as u64)
        .f64_field("agreement_rate", agreement.center)
        .f64_field("agreement_low", agreement.low)
        .f64_field("theory_delta", bound)
        .f64_field("mean_total_work", total_work as f64 / trials.max(1) as f64)
        .bool_field("pass", pass);
    if !pass {
        eprintln!(
            "GATE FAILED voting qf={quorum_factor} vs {}: δ̂={} per-side [{}, {}] vs theory δ≥{bound:.4}",
            class.name, agreement, zero_side, one_side
        );
    }
    CellOutcome {
        row: row.finish(),
        pass,
    }
}

/// The local coin has no shared state to model — its agreement probability
/// is exactly `2^{1−n}`, so the cell measures independent flips directly
/// and demands the Wilson interval contain the exact value.
fn local_cell(trials: usize, seed_base: u64) -> CellOutcome {
    let mut agreements = 0usize;
    for trial in 0..trials {
        let first = SmallRng::seed_from_u64(seed_base.wrapping_add(trial as u64 * (N as u64)))
            .random_bool(0.5);
        let unanimous = (1..N).all(|pid| {
            SmallRng::seed_from_u64(seed_base.wrapping_add(trial as u64 * (N as u64) + pid as u64))
                .random_bool(0.5)
                == first
        });
        if unanimous {
            agreements += 1;
        }
    }
    let exact = 2.0 * theory::local_coin_delta(N as u64);
    let measured = wilson_interval(agreements, trials);
    let pass = measured.contains(exact);
    let mut row = Obj::new();
    row.str_field("cell", "local")
        .u64_field("trials", trials as u64)
        .u64_field("agreements", agreements as u64)
        .f64_field("agreement_rate", measured.center)
        .f64_field("exact_agreement", exact)
        .bool_field("pass", pass);
    if !pass {
        eprintln!("GATE FAILED local coin: measured {measured} vs exact {exact:.4}");
    }
    CellOutcome {
        row: row.finish(),
        pass,
    }
}

fn binary_vectors(n: usize) -> Vec<Vec<Value>> {
    (0..1u64 << n)
        .map(|bits| (0..n).map(|i| (bits >> i) & 1).collect())
        .collect()
}

/// Exhaustively certifies validity and coherence of a coin-built spec over
/// every schedule, with the vote streams pinned to `seed`.
fn certificate(
    spec: Arc<dyn ObjectSpec>,
    n: usize,
    seed: u64,
    max_steps: usize,
    budget: usize,
) -> CellOutcome {
    let name = spec.name();
    let mut states = 0u64;
    let mut pass = true;
    let t0 = Instant::now();
    for inputs in binary_vectors(n) {
        let report = GraphExplorer::new(Arc::clone(&spec), inputs.clone())
            .with_config(GraphConfig {
                max_steps,
                max_states: budget,
                coin_policy: CoinPolicy::Fixed(seed),
                ..GraphConfig::default()
            })
            .verify_safety();
        match report {
            Ok(report) => {
                states += report.distinct_states as u64;
                if !report.is_exhaustive_pass() {
                    eprintln!(
                        "CERTIFICATE FAILED {name} n={n} seed={seed} on {inputs:?}: \
                         truncated={} violation={:?}",
                        report.truncated_states, report.violation
                    );
                    pass = false;
                }
            }
            Err(e) => {
                eprintln!("CERTIFICATE ABORTED {name} n={n} seed={seed} on {inputs:?}: {e:?}");
                pass = false;
            }
        }
    }
    let mut row = Obj::new();
    row.str_field("cell", "certificate")
        .str_field("spec", &name)
        .u64_field("n", n as u64)
        .u64_field("coin_seed", seed)
        .u64_field("distinct_states", states)
        .f64_field("elapsed_secs", t0.elapsed().as_secs_f64())
        .bool_field("pass", pass);
    CellOutcome {
        row: row.finish(),
        pass,
    }
}

fn main() -> ExitCode {
    let mut trials: usize = 400;
    let mut budget: usize = 2_000_000;
    let mut out_path = "BENCH_coin_campaign.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trials" => {
                trials = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--trials <N>");
            }
            "--state-budget" => {
                budget = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--state-budget <N>");
            }
            "--out" => {
                out_path = args.next().expect("--out <path>");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: coin_campaign [--trials <N>] [--state-budget <N>] [--out <path>]"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let started = Instant::now();
    let mut cells: Vec<CellOutcome> = Vec::new();

    for quorum_factor in [1u32, 4] {
        for class in adversary_classes() {
            let seed_base = 1000 * u64::from(quorum_factor) + class.name.len() as u64;
            cells.push(voting_cell(quorum_factor, &class, trials, seed_base));
            let last = cells.last().expect("just pushed");
            eprintln!("{}", last.row);
        }
    }
    cells.push(local_cell(trials.max(2_000), 77));

    let voting = || {
        Arc::new(VotingSharedCoin::with_quorum_factor(1).expect("positive factor"))
            as Arc<dyn ObjectSpec>
    };
    for seed in [3u64, 7, 11] {
        cells.push(certificate(
            Arc::new(CoinConciliator::new(voting())),
            3,
            seed,
            900,
            budget,
        ));
    }
    cells.push(certificate(
        Arc::new(Chain::pair(
            Arc::new(CoinConciliator::new(voting())),
            Arc::new(Ratifier::binary()),
        )),
        2,
        7,
        900,
        budget,
    ));

    let pass = cells.iter().all(|c| c.pass);
    let rows: Vec<&str> = cells.iter().map(|c| c.row.as_str()).collect();
    let mut report = Obj::new();
    report
        .str_field("bench", "coin_campaign")
        .u64_field("trials", trials as u64)
        .u64_field("state_budget", budget as u64)
        .f64_field("elapsed_secs", started.elapsed().as_secs_f64())
        .raw_field("cells", &format!("[{}]", rows.join(",")))
        .bool_field("pass", pass);
    let json = report.finish();
    if let Err(e) = std::fs::write(&out_path, format!("{json}\n")) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }

    if pass {
        eprintln!("coin campaign: PASS ({out_path})");
        ExitCode::SUCCESS
    } else {
        eprintln!("coin campaign: FAIL ({out_path})");
        ExitCode::FAILURE
    }
}
