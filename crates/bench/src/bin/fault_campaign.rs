//! Fault-injection campaign: sweep fault class × rate × protocol over the
//! deterministic lab and classify each paper property as
//! holds / degrades / violated.
//!
//! ```text
//! fault_campaign [--seeds <K>] [--n <procs>] [--rounds <f>]
//! ```
//!
//! Every cell runs `K` seeded lab executions of Theorem 5's
//! `BoundedConsensus` (bound `f`, leader fallback) over `FaultyMemory`
//! wrapping the lab substrate, under a rotating menu of *fair* schedulers
//! (the designated-leader fallback, like any leader-based protocol, needs
//! the leader to be scheduled eventually; the starvation-capable attacker
//! heuristics stay in `lab_explore`, where no fallback is involved).
//!
//! Checked per cell:
//!
//! * **validity / coherence / acceptance** — deterministic safety must
//!   show *zero* violations under every fault plan (window-bounded stale
//!   reads are regular-register semantics, which the ratifier's quorum
//!   argument survives; lost and delayed writes only slow conciliation;
//!   resets are scoped to conciliator registers).
//! * **termination** — `BoundedConsensus` must decide on 100% of seeds,
//!   fallback included.
//! * **agreement probability δ** — estimated as the pooled per-stage
//!   ratification rate among runs that reached the first conciliator;
//!   allowed to *degrade* under faults, never required to hold.
//! * **Theorem 5 reconciliation** — the measured fallback frequency must
//!   match `theory::fallback_probability(δ̂, f) = (1 − δ̂)^f` within a
//!   Chernoff-style tolerance.
//!
//! Emits one machine-readable JSON line per cell plus a final summary
//! line, mirroring `lab_explore`; exits nonzero on any safety violation,
//! termination failure, or reconciliation miss.

use std::process::ExitCode;
use std::sync::Arc;

use mc_analysis::theory;
use mc_core::conciliator::WriteSchedule;
use mc_lab::Lab;
use mc_quorums::{BinaryScheme, BinomialScheme, QuorumScheme};
use mc_runtime::{BoundedConsensus, ConsensusOptions, FaultPlan, FaultyMemory};
use mc_sim::adversary::{RandomScheduler, RoundRobin};
use mc_sim::sched::QuantumScheduler;
use mc_sim::Adversary;
use mc_telemetry::json::Obj;

const MAX_STEPS: u64 = 400_000;

#[derive(Debug, Clone, Copy, PartialEq)]
enum Proto {
    Binary,
    Multivalued(u64),
}

impl Proto {
    fn capacity(self) -> u64 {
        match self {
            Proto::Binary => 2,
            Proto::Multivalued(m) => m,
        }
    }

    fn scheme(self) -> Arc<dyn QuorumScheme> {
        match self {
            Proto::Binary => Arc::new(BinaryScheme::new()),
            Proto::Multivalued(m) => Arc::new(BinomialScheme::for_capacity(m).expect("m ≥ 2")),
        }
    }

    fn name(self) -> String {
        match self {
            Proto::Binary => "binary".to_string(),
            Proto::Multivalued(m) => format!("multivalued({m})"),
        }
    }
}

/// One cell of the sweep: a fault class at a rate.
#[derive(Debug, Clone, Copy)]
struct Cell {
    label: &'static str,
    lost: f64,
    stale: f64,
    delayed: f64,
    delay_ops: u64,
    reset: f64,
}

impl Cell {
    fn plan(&self, seed: u64) -> FaultPlan {
        let mut plan = FaultPlan::seeded(seed ^ 0x5eed_fa17);
        if self.lost > 0.0 {
            plan = plan.lost_prob_writes(self.lost);
        }
        if self.stale > 0.0 {
            plan = plan.stale_reads(self.stale);
        }
        if self.delayed > 0.0 {
            plan = plan.delayed_writes(self.delayed, self.delay_ops);
        }
        if self.reset > 0.0 {
            plan = plan.register_resets(self.reset);
        }
        plan
    }
}

const CELLS: &[Cell] = &[
    Cell {
        label: "none",
        lost: 0.0,
        stale: 0.0,
        delayed: 0.0,
        delay_ops: 3,
        reset: 0.0,
    },
    Cell {
        label: "lost@0.1",
        lost: 0.1,
        stale: 0.0,
        delayed: 0.0,
        delay_ops: 3,
        reset: 0.0,
    },
    Cell {
        label: "lost@0.4",
        lost: 0.4,
        stale: 0.0,
        delayed: 0.0,
        delay_ops: 3,
        reset: 0.0,
    },
    Cell {
        label: "stale@0.1",
        lost: 0.0,
        stale: 0.1,
        delayed: 0.0,
        delay_ops: 3,
        reset: 0.0,
    },
    Cell {
        label: "stale@0.4",
        lost: 0.0,
        stale: 0.4,
        delayed: 0.0,
        delay_ops: 3,
        reset: 0.0,
    },
    Cell {
        label: "delayed@0.1",
        lost: 0.0,
        stale: 0.0,
        delayed: 0.1,
        delay_ops: 3,
        reset: 0.0,
    },
    Cell {
        label: "delayed@0.4",
        lost: 0.0,
        stale: 0.0,
        delayed: 0.4,
        delay_ops: 3,
        reset: 0.0,
    },
    Cell {
        label: "reset@0.02",
        lost: 0.0,
        stale: 0.0,
        delayed: 0.0,
        delay_ops: 3,
        reset: 0.02,
    },
    Cell {
        label: "reset@0.1",
        lost: 0.0,
        stale: 0.0,
        delayed: 0.0,
        delay_ops: 3,
        reset: 0.1,
    },
    Cell {
        label: "combined",
        lost: 0.2,
        stale: 0.2,
        delayed: 0.1,
        delay_ops: 3,
        reset: 0.02,
    },
];

/// Fair schedulers only: the leader fallback needs the leader scheduled
/// eventually, which starvation-capable attackers are free to deny.
fn adversary_for(seed: u64) -> (&'static str, Box<dyn Adversary + Send>) {
    match seed % 3 {
        0 => ("random", Box::new(RandomScheduler::new(seed))),
        1 => ("round-robin", Box::new(RoundRobin::new())),
        _ => ("quantum", Box::new(QuantumScheduler::new(4))),
    }
}

fn inputs_for(capacity: u64, seed: u64, n: usize) -> Vec<u64> {
    (0..n)
        .map(|pid| (seed.wrapping_mul(31).wrapping_add(pid as u64 * 17)) % capacity)
        .collect()
}

#[derive(Debug, Default)]
struct CellStats {
    runs: u64,
    validity_violations: u64,
    coherence_violations: u64,
    termination_failures: u64,
    /// Runs in which some process reached the first conciliator.
    entered_c1: u64,
    /// Runs in which some process took the fallback.
    fell_back: u64,
    /// Conciliator stages entered, summed over entered runs (≤ f each).
    stages_entered: u64,
    /// Entered runs that ratified inside the chain (one success each).
    ratified: u64,
    faults_injected: u64,
}

impl CellStats {
    /// Pooled per-stage ratification probability δ̂ among entered runs.
    fn delta_hat(&self) -> Option<f64> {
        (self.stages_entered > 0).then(|| self.ratified as f64 / self.stages_entered as f64)
    }

    fn measured_fallback(&self) -> Option<f64> {
        (self.entered_c1 > 0).then(|| self.fell_back as f64 / self.entered_c1 as f64)
    }
}

/// Runs one cell of the sweep and accumulates its statistics.
fn run_cell(cell: &Cell, proto: Proto, seeds: u64, n: usize, f: u32) -> CellStats {
    let mut stats = CellStats::default();
    let fast_prefix = 2u64;
    for seed in 0..seeds {
        let (_, adversary) = adversary_for(seed);
        let lab = Lab::new(n, adversary, &[], MAX_STEPS);
        let memory = FaultyMemory::new(lab.memory(), cell.plan(seed));
        let fault_counts = memory.clone();
        let options = ConsensusOptions {
            n,
            scheme: proto.scheme(),
            schedule: WriteSchedule::impatient(),
            fast_path: true,
            max_conciliator_rounds: Some(f),
            conciliator: mc_runtime::ConciliatorChoice::Impatient,
        };
        let consensus = BoundedConsensus::with_options_in(memory, options);
        let inputs = inputs_for(proto.capacity(), seed, n);
        stats.runs += 1;
        let report = match lab.run(seed, |pid, rng| consensus.decide(pid, inputs[pid], rng)) {
            Ok(report) => report,
            Err(_) => {
                stats.termination_failures += 1;
                continue;
            }
        };
        stats.faults_injected += fault_counts.faults_injected();

        let decisions: Vec<u64> = report
            .decisions
            .iter()
            .map(|d| d.expect("no crashes configured"))
            .collect();
        let first = decisions[0];
        if !decisions.iter().all(|&d| d == first) {
            stats.coherence_violations += 1;
        }
        if decisions.iter().any(|d| !inputs.contains(d)) {
            stats.validity_violations += 1;
        }

        // Per-run chain depth, read off the object's telemetry after all
        // workers have joined.
        let telemetry = consensus.telemetry();
        let max_stage = telemetry.rounds_to_decide().max();
        let fell_back = telemetry.fallbacks_taken() > 0;
        if fell_back {
            stats.entered_c1 += 1;
            stats.fell_back += 1;
            stats.stages_entered += u64::from(f);
        } else if max_stage > fast_prefix {
            // Decided at ratifier R_j, stage index 2j + 1: the run consumed
            // j conciliator stages and ratified at the last one.
            let conciliators = (max_stage - 1) / 2;
            stats.entered_c1 += 1;
            stats.stages_entered += conciliators;
            stats.ratified += 1;
        }
    }
    stats
}

fn main() -> ExitCode {
    let mut seeds: u64 = 300;
    let mut n: usize = 3;
    let mut rounds: u32 = 2;
    let usage = "usage: fault_campaign [--seeds <K>] [--n <procs>] [--rounds <f>]";
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seeds" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seeds = v,
                None => {
                    eprintln!("--seeds needs a non-negative integer\n{usage}");
                    return ExitCode::FAILURE;
                }
            },
            "--n" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => n = v,
                _ => {
                    eprintln!("--n needs a positive integer\n{usage}");
                    return ExitCode::FAILURE;
                }
            },
            "--rounds" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => rounds = v,
                None => {
                    eprintln!("--rounds needs a non-negative integer\n{usage}");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown argument: {other}\n{usage}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut pass = true;
    let mut cells_run = 0u64;
    let mut total_faults = 0u64;
    let mut baseline_delta: Option<f64> = None;

    for proto in [Proto::Binary, Proto::Multivalued(6)] {
        for cell in CELLS {
            let stats = run_cell(cell, proto, seeds, n, rounds);
            cells_run += 1;
            total_faults += stats.faults_injected;

            let safety_ok = stats.validity_violations == 0
                && stats.coherence_violations == 0
                && stats.termination_failures == 0;
            if !safety_ok {
                pass = false;
            }

            let delta_hat = stats.delta_hat();
            if cell.label == "none" && proto == Proto::Binary {
                baseline_delta = delta_hat;
            }
            let delta_class = match (delta_hat, baseline_delta) {
                (Some(d), Some(base)) if d + 0.1 < base => "degrades",
                (Some(_), _) => "holds",
                (None, _) => "n/a",
            };

            // Theorem 5 reconciliation: measured fallback frequency vs
            // (1 − δ̂)^f, with a 3σ binomial tolerance plus model slack
            // (pooling δ̂ across stages assumes homogeneity it need not
            // have). Skipped below 30 entered runs — no statistical power.
            let (fallback_class, predicted, measured) = match (delta_hat, stats.measured_fallback())
            {
                (Some(d), Some(m)) if stats.entered_c1 >= 30 => {
                    let predicted = theory::fallback_probability(d, rounds);
                    let sigma = (predicted * (1.0 - predicted) / stats.entered_c1 as f64)
                        .sqrt()
                        .max(1e-9);
                    let tolerance = 3.0 * sigma + 0.05;
                    if (m - predicted).abs() <= tolerance {
                        ("reconciles", predicted, m)
                    } else {
                        pass = false;
                        ("DIVERGES", predicted, m)
                    }
                }
                (Some(d), Some(m)) => (
                    "insufficient-sample",
                    theory::fallback_probability(d, rounds),
                    m,
                ),
                _ => ("n/a", f64::NAN, f64::NAN),
            };

            let mut line = Obj::new();
            line.str_field("bench", "fault_campaign")
                .str_field("protocol", &proto.name())
                .str_field("cell", cell.label)
                .u64_field("seeds", stats.runs)
                .u64_field("rounds", u64::from(rounds))
                .u64_field("validity_violations", stats.validity_violations)
                .u64_field("coherence_violations", stats.coherence_violations)
                .u64_field("termination_failures", stats.termination_failures)
                .u64_field("entered_c1", stats.entered_c1)
                .u64_field("fell_back", stats.fell_back)
                .u64_field("faults_injected", stats.faults_injected)
                .f64_field("delta_hat", delta_hat.unwrap_or(f64::NAN))
                .f64_field("predicted_fallback", predicted)
                .f64_field("measured_fallback", measured)
                .str_field("delta", delta_class)
                .str_field("fallback", fallback_class)
                .str_field("safety", if safety_ok { "holds" } else { "VIOLATED" });
            println!("{}", line.finish());

            eprintln!(
                "{} / {:<12} safety={} δ̂={} fallback={} (faults={})",
                proto.name(),
                cell.label,
                if safety_ok { "holds" } else { "VIOLATED" },
                delta_hat.map_or("n/a".into(), |d| format!("{d:.3}")),
                fallback_class,
                stats.faults_injected,
            );
        }
    }

    let mut summary = Obj::new();
    summary
        .str_field("bench", "fault_campaign_summary")
        .u64_field("cells", cells_run)
        .u64_field("seeds_per_cell", seeds)
        .u64_field("total_faults_injected", total_faults)
        .bool_field("pass", pass);
    println!("{}", summary.finish());

    if pass {
        eprintln!("fault campaign: PASS");
        ExitCode::SUCCESS
    } else {
        eprintln!("fault campaign: FAIL");
        ExitCode::FAILURE
    }
}
