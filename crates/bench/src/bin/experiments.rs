//! Regenerates every table and figure of the reproduction.
//!
//! ```text
//! experiments all            # every experiment, full trial counts
//! experiments all --quick    # every experiment, reduced trials (CI smoke)
//! experiments e1 e3 --quick  # a subset
//! experiments --list         # show the experiment index
//! ```

use std::process::ExitCode;

use mc_bench::{run_experiment, Mode, EXPERIMENTS};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let list = args.iter().any(|a| a == "--list");
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();

    if list {
        print_index();
        return ExitCode::SUCCESS;
    }

    let mode = if quick { Mode::Quick } else { Mode::Full };
    let selected: Vec<&str> = if ids.is_empty() || ids.contains(&"all") {
        EXPERIMENTS.iter().map(|(id, _, _)| *id).collect()
    } else {
        ids
    };

    println!(
        "modular-consensus experiments ({} mode)\n\
         reproducing: Aspnes, A Modular Approach to Shared-Memory Consensus (PODC 2010)\n",
        if quick { "quick" } else { "full" }
    );
    for id in selected {
        match run_experiment(id, mode) {
            Ok(report) => println!("{report}\n{}", "-".repeat(78)),
            Err(err) => {
                eprintln!("error: {err}");
                print_index();
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn print_index() {
    println!("experiments:");
    for (id, claim, _) in EXPERIMENTS {
        println!("  {id:<4} {claim}");
    }
}
