//! Measures what the pipelined service buys: the same proposal stream
//! pushed by 8 producer threads through (a) per-call `ConsensusEngine::
//! submit` and (b) `ConsensusService::submit_batch` + `DecisionHandle`
//! waits, reporting ops/sec for both legs, the speedup, and the service's
//! submit→decision latency quantiles.
//!
//! ```text
//! service_throughput [--ops <K>] [--trials <T>] [--min-speedup <X>] [--out <path>]
//! ```
//!
//! Both legs run with a streaming [`mc_telemetry::JsonlRecorder`] attached
//! (draining into `io::sink`), because that is the configuration the
//! service was built to fix: per-call `submit` emits the full per-decide
//! event stream — `StageEntered`, `RatifierVerdict`, `Decided`, and
//! friends — for every proposal, while the service amortizes recorder
//! traffic into one `batch_drained` event per worker drain (counters and
//! latency histograms stay per-op). Each leg runs `--trials` times
//! (default 3) and the best trial represents it — both legs are
//! multi-threaded wall-clock measurements, so single runs on a shared CI
//! runner are noisy and best-of-N is the noise-robust summary. The
//! acceptance gate is enforced as process failure so a CI smoke run
//! catches regressions: the service leg must sustain at least
//! `--min-speedup` (default 1.5) times the per-call leg's ops/sec. The
//! gate is deliberately looser than the ~4× margin measured on an idle
//! machine — the measured `speedup` in the report is the strict figure;
//! the gate only has to catch batching-stopped-amortizing regressions
//! without flaking on runner noise. The report also carries
//! `percall_bare_ops_per_sec` / `bare_speedup` — the same comparison with
//! no recorder attached — as an ungated honesty figure: on a single core
//! the structural savings alone (one ring lock per producer chunk instead
//! of two shard-mutex crossings per proposal) are real but far smaller
//! than the telemetry amortization.
//!
//! Writes a JSON report (default `BENCH_service_throughput.json`) in the
//! `BENCH_*_overhead.json` family format.

use std::process::ExitCode;
use std::sync::{Arc, Barrier};
use std::time::Instant;

use mc_runtime::{ConsensusEngine, ConsensusService};
use mc_telemetry::json::Obj;
use mc_telemetry::{JsonlRecorder, Recorder};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const PRODUCERS: usize = 8;
const CAPACITY: u64 = 2;
/// Producer-side chunk: one ring lock per this many proposals.
const SUBMIT_BATCH: usize = 64;

/// A streaming recorder that formats every event but writes nowhere, so
/// the benchmark measures event-emission cost without filesystem noise.
fn sink_recorder() -> Arc<dyn Recorder> {
    Arc::new(JsonlRecorder::new(Box::new(std::io::sink())))
}

/// Resident set size in kilobytes from `/proc/self/status`, or `None` on
/// platforms without procfs.
fn rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Per-call leg: `PRODUCERS` threads each submit `ops` proposals straight
/// into the engine, one instance per proposal. Returns ops/sec.
fn run_percall(ops: u64, recorder: Option<Arc<dyn Recorder>>) -> f64 {
    let mut builder = ConsensusEngine::builder()
        .n(2)
        .values(CAPACITY)
        .participants(1);
    if let Some(recorder) = recorder {
        builder = builder.recorder(recorder);
    }
    let engine = Arc::new(builder.build());
    // Warm the pool so both legs measure steady-state recycling.
    let mut rng = SmallRng::seed_from_u64(0xCA11);
    for id in 0..256 {
        std::hint::black_box(engine.submit(id, id % CAPACITY, &mut rng));
    }

    let barrier = Arc::new(Barrier::new(PRODUCERS + 1));
    let threads: Vec<_> = (0..PRODUCERS as u64)
        .map(|p| {
            let engine = Arc::clone(&engine);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0xCA11 + p);
                let base = 1_000 + p * ops;
                barrier.wait();
                for i in 0..ops {
                    std::hint::black_box(engine.submit(base + i, i % CAPACITY, &mut rng));
                }
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    for t in threads {
        t.join().expect("producer thread");
    }
    (PRODUCERS as u64 * ops) as f64 / start.elapsed().as_secs_f64()
}

/// Service leg: the same offered load through the batching frontend, with
/// the same streaming recorder attached. Returns ops/sec plus the service
/// handle for telemetry readout.
fn run_service(ops: u64) -> (f64, ConsensusService) {
    let service = Arc::new(
        ConsensusService::builder()
            .n(2)
            .values(CAPACITY)
            .participants(1)
            .recorder(sink_recorder())
            .build(),
    );
    // Same pool warm-up as the per-call leg.
    for id in 0..256 {
        let handle = service.submit(id, id % CAPACITY).expect("warmup admits");
        handle.wait().expect("warmup decides");
    }

    let barrier = Arc::new(Barrier::new(PRODUCERS + 1));
    let threads: Vec<_> = (0..PRODUCERS as u64)
        .map(|p| {
            let service = Arc::clone(&service);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let base = 1_000 + p * ops;
                barrier.wait();
                let mut handles = Vec::with_capacity(ops as usize);
                for chunk_start in (0..ops).step_by(SUBMIT_BATCH) {
                    let chunk: Vec<(u64, u64)> = (chunk_start
                        ..(chunk_start + SUBMIT_BATCH as u64).min(ops))
                        .map(|i| (base + i, i % CAPACITY))
                        .collect();
                    for result in service.submit_batch(&chunk) {
                        handles.push(result.expect("Block admits every proposal"));
                    }
                }
                for handle in handles {
                    std::hint::black_box(handle.wait().expect("every proposal decides"));
                }
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    for t in threads {
        t.join().expect("producer thread");
    }
    let ops_per_sec = (PRODUCERS as u64 * ops) as f64 / start.elapsed().as_secs_f64();
    let service = Arc::into_inner(service).expect("all producers joined");
    (ops_per_sec, service)
}

fn run(ops: u64, trials: u64, min_speedup: f64, out_path: &str) -> Result<(), String> {
    eprintln!(
        "service throughput: {PRODUCERS} producers x {ops} proposals, \
         submit batch {SUBMIT_BATCH}, best of {trials} trials"
    );

    // Best-of-N per leg: wall-clock throughput of a multi-threaded run is
    // the quantity most distorted by a busy runner, and interference only
    // ever slows a trial down, so the fastest trial is the most faithful
    // one.
    let percall_per_sec = (0..trials)
        .map(|_| run_percall(ops, Some(sink_recorder())))
        .fold(f64::MIN, f64::max);
    let percall_bare_per_sec = (0..trials)
        .map(|_| run_percall(ops, None))
        .fold(f64::MIN, f64::max);
    let mut best: Option<(f64, ConsensusService)> = None;
    for _ in 0..trials {
        let (per_sec, mut service) = run_service(ops);
        // Counting cross-check on every trial: a "fast" service that lost
        // proposals would be a bug, not a win. Warm-up adds 256.
        let enqueued = service.telemetry().proposals_enqueued();
        let expected = PRODUCERS as u64 * ops + 256;
        if enqueued != expected {
            return Err(format!(
                "service enqueued {enqueued} proposals, expected {expected} — \
                 the ring admitted or dropped the wrong count"
            ));
        }
        match &best {
            Some((best_per_sec, _)) if *best_per_sec >= per_sec => service.shutdown(),
            _ => {
                if let Some((_, mut loser)) = best.replace((per_sec, service)) {
                    loser.shutdown();
                }
            }
        }
    }
    let (service_per_sec, mut service) = best.expect("at least one trial");
    let speedup = service_per_sec / percall_per_sec;
    let bare_speedup = service_per_sec / percall_bare_per_sec;

    let telemetry = service.telemetry();
    let enqueued = telemetry.proposals_enqueued();
    let batches = telemetry.batches_drained();
    let mean_batch = if batches > 0 {
        enqueued as f64 / batches as f64
    } else {
        0.0
    };
    let wait_p50_ns = telemetry.service_wait_p50_ns();
    let wait_p99_ns = telemetry.service_wait_p99_ns();
    let max_depth = telemetry.max_queue_depth_seen();

    let mut report = Obj::new();
    report
        .str_field("bench", "service_throughput")
        .u64_field("producers", PRODUCERS as u64)
        .u64_field("ops_per_producer", ops)
        .u64_field("submit_batch", SUBMIT_BATCH as u64)
        .u64_field("trials", trials)
        .f64_field("percall_ops_per_sec", percall_per_sec)
        .f64_field("percall_bare_ops_per_sec", percall_bare_per_sec)
        .f64_field("service_ops_per_sec", service_per_sec)
        .f64_field("speedup", speedup)
        .f64_field("bare_speedup", bare_speedup)
        .u64_field("handle_wait_p50_ns", wait_p50_ns)
        .u64_field("handle_wait_p99_ns", wait_p99_ns)
        .u64_field("batches_drained", batches)
        .f64_field("mean_drain_batch", mean_batch)
        .u64_field("max_queue_depth", max_depth)
        .u64_field("rss_kb", rss_kb().unwrap_or(0));
    let json = report.finish();
    println!("{json}");
    std::fs::write(out_path, format!("{json}\n"))
        .map_err(|e| format!("writing {out_path}: {e}"))?;
    eprintln!("report written to {out_path}");

    service.shutdown();
    if speedup < min_speedup {
        return Err(format!(
            "service leg sustained only {speedup:.2}x the per-call leg \
             (gate {min_speedup:.2}x) — batching is not amortizing"
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut ops = 20_000u64;
    let mut trials = 3u64;
    let mut min_speedup = 1.5f64;
    let mut out_path = "BENCH_service_throughput.json".to_string();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--ops" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(v)) if v > 0 => ops = v,
                _ => {
                    eprintln!("--ops needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--trials" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(v)) if v > 0 => trials = v,
                _ => {
                    eprintln!("--trials needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--min-speedup" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(v)) if v > 0.0 => min_speedup = v,
                _ => {
                    eprintln!("--min-speedup needs a positive number");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown option {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    match run(ops, trials, min_speedup, &out_path) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
