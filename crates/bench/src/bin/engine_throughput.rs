//! Measures what instance pooling buys: sustained `ReplicatedLog` appends
//! (every decided slot is a consensus instance that must be retired and
//! recycled) and a sustained `ConsensusEngine` submit stream, reporting
//! decisions/sec, steady-state RSS, and pool hit rate.
//!
//! ```text
//! engine_throughput [--warmup <K>] [--out <path>]
//! ```
//!
//! The acceptance gates are enforced as process failure, so a CI smoke run
//! catches regressions:
//!
//! * **flat memory** — RSS after appending 10× the warm-up volume must be
//!   within 5% of the post-warm-up RSS (the learn-then-retire window plus
//!   the pool means slot machinery does not accumulate);
//! * **pool hit rate > 90%** — after warm-up, almost every slot activation
//!   is a recycle, not an allocation;
//! * **no per-slot scheme re-validation** — every live and pooled instance
//!   holds the *same* `Arc<ConsensusOptions>` as the log (slot setup is a
//!   pointer bump), checked via the `Arc` strong count.
//!
//! Writes a JSON report (default `BENCH_engine_throughput.json`) in the
//! `BENCH_*_overhead.json` family format.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use mc_runtime::{ConsensusEngine, ReplicatedLog};
use mc_telemetry::json::Obj;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const N: usize = 4;
const CAPACITY: u64 = 1024;

/// Resident set size in kilobytes from `/proc/self/status`, or `None` on
/// platforms without procfs.
fn rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Sustained append-apply loop: append, and every `APPLY_BATCH` slots
/// consume the learned prefix (here: just fold it into a checksum) and
/// compact it away, the way a state machine applying the log would.
fn append_burst(log: &ReplicatedLog, rng: &mut SmallRng, start: u64, count: u64) -> u64 {
    const APPLY_BATCH: u64 = 1024;
    let mut checksum = 0u64;
    let mut applied = log.compacted_below();
    for i in start..start + count {
        std::hint::black_box(log.append(i % CAPACITY, rng));
        if i % APPLY_BATCH == APPLY_BATCH - 1 {
            let prefix = log.learned_prefix();
            while applied < prefix {
                checksum = checksum.wrapping_add(log.get(applied).expect("learned"));
                applied += 1;
            }
            log.compact_below(applied);
        }
    }
    checksum
}

fn run(warmup: u64, out_path: &str) -> Result<(), String> {
    let sustained = warmup * 10;
    eprintln!("engine throughput: {warmup} warm-up appends, {sustained} sustained, n={N}");

    let log = ReplicatedLog::new(N, CAPACITY);
    let mut rng = SmallRng::seed_from_u64(0x10d);

    std::hint::black_box(append_burst(&log, &mut rng, 0, warmup));
    let warm_rss = rss_kb();

    let start = Instant::now();
    std::hint::black_box(append_burst(&log, &mut rng, warmup, sustained));
    let elapsed = start.elapsed();
    let steady_rss = rss_kb();
    let decisions_per_sec = sustained as f64 / elapsed.as_secs_f64();

    let telemetry = log.telemetry();
    let hit_rate = telemetry.pool_hit_rate();
    let live = log.live_slots();
    let pooled = log.pooled_instances();

    // Slot setup must be a pointer bump: the log and every instance it has
    // kept alive share one validated ConsensusOptions allocation. A slot
    // path that re-built (and re-validated) options per activation would
    // leave the log as the sole holder.
    let options_holders = Arc::strong_count(log.options_handle());
    if options_holders != 1 + live + pooled {
        return Err(format!(
            "per-slot options sharing broken: {options_holders} Arc holders, \
             expected 1 + {live} live + {pooled} pooled"
        ));
    }

    // Engine leg: the same pooled machinery behind the submit API.
    let engine = ConsensusEngine::builder()
        .n(N)
        .values(CAPACITY)
        .participants(1)
        .build();
    for id in 0..warmup {
        std::hint::black_box(engine.submit(id, id % CAPACITY, &mut rng));
    }
    let engine_start = Instant::now();
    for id in warmup..warmup + sustained {
        std::hint::black_box(engine.submit(id, id % CAPACITY, &mut rng));
    }
    let engine_elapsed = engine_start.elapsed();
    let engine_per_sec = sustained as f64 / engine_elapsed.as_secs_f64();
    let engine_hit_rate = engine.telemetry().pool_hit_rate();

    let rss_growth_pct = match (warm_rss, steady_rss) {
        (Some(warm), Some(steady)) if warm > 0 => {
            (steady as f64 - warm as f64) / warm as f64 * 100.0
        }
        _ => 0.0,
    };

    let mut report = Obj::new();
    report
        .str_field("bench", "engine_throughput")
        .u64_field("n", N as u64)
        .u64_field("warmup_appends", warmup)
        .u64_field("sustained_appends", sustained)
        .f64_field("decisions_per_sec", decisions_per_sec)
        .f64_field("engine_decisions_per_sec", engine_per_sec)
        .u64_field("warmup_rss_kb", warm_rss.unwrap_or(0))
        .u64_field("steady_rss_kb", steady_rss.unwrap_or(0))
        .f64_field("rss_growth_pct", rss_growth_pct)
        .f64_field("pool_hit_rate", hit_rate)
        .f64_field("engine_pool_hit_rate", engine_hit_rate)
        .u64_field("pool_hits", telemetry.pool_hits())
        .u64_field("pool_misses", telemetry.pool_misses())
        .u64_field("instances_retired", telemetry.instances_retired())
        .u64_field("live_slots", live as u64)
        .u64_field("pooled_instances", pooled as u64)
        .u64_field("learned_prefix", log.learned_prefix() as u64);
    let json = report.finish();
    println!("{json}");
    std::fs::write(out_path, format!("{json}\n"))
        .map_err(|e| format!("writing {out_path}: {e}"))?;
    eprintln!("report written to {out_path}");

    if hit_rate <= 0.9 {
        return Err(format!(
            "log pool hit rate {hit_rate:.4} did not exceed 0.9 — recycling is not engaging"
        ));
    }
    if engine_hit_rate <= 0.9 {
        return Err(format!(
            "engine pool hit rate {engine_hit_rate:.4} did not exceed 0.9"
        ));
    }
    if warm_rss.is_some() && rss_growth_pct > 5.0 {
        return Err(format!(
            "RSS grew {rss_growth_pct:.2}% across 10× the warm-up volume (limit 5%) — \
             slot machinery is accumulating"
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut warmup = 20_000u64;
    let mut out_path = "BENCH_engine_throughput.json".to_string();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--warmup" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(v)) if v > 0 => warmup = v,
                _ => {
                    eprintln!("--warmup needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown option {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    match run(warmup, &out_path) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
