//! Service-level chaos campaign: sweep chaos plan × supervision policy
//! over the pipelined [`ConsensusService`] and gate on exactly-once
//! delivery under worker panics, stalls, and register faults.
//!
//! ```text
//! chaos_campaign [--seeds <K>] [--ops <N>] [--trials <T>]
//!                [--min-ratio <R>] [--out <path>]
//! ```
//!
//! Every cell runs `K` seeded executions of a chaos-injected service:
//! workers panic at drain boundaries and stall mid-drain on the plan's
//! deterministic cadence, while register-level faults (lost probabilistic
//! writes, stale reads) stress the protocol underneath. Because every
//! proposal runs with `participants = 1`, the solo submitter's proposal is
//! the only valid decision, so correctness is exact — not statistical:
//!
//! * **zero lost decisions** — every submitted handle settles with its own
//!   proposal; a poisoned or wrong handle is a campaign failure.
//! * **zero duplicates** — the telemetry ledger must reconcile exactly:
//!   `proposals_enqueued == decisions == submitted`, with an empty queue
//!   and no leftover in-flight cells after shutdown.
//! * **bounded restarts** — `worker_restarts` never exceeds the policy's
//!   budget times the worker count, and recovery latency quantiles
//!   (panic-catch → drain-loop reentry, backoff included) are reported as
//!   `recovery_p50_ns` / `recovery_p99_ns` per cell and pooled.
//!
//! A final **supervision-overhead gate** reruns the throughput loop twice
//! with an empty chaos plan — once at `restart_budget = 0` (the legacy
//! poison-on-first-panic configuration) and once under the default
//! supervisor — and fails unless the supervised leg sustains at least
//! `--min-ratio` (default 0.95) of the legacy ops/sec, best of `--trials`
//! runs per leg: supervision must cost nothing when nothing fails.
//!
//! Emits one machine-readable JSON line per cell on stdout and writes the
//! pooled summary (recovery quantiles, totals, gate verdicts) to `--out`
//! (default `BENCH_chaos_recovery.json`).

use std::process::ExitCode;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use mc_runtime::{
    AtomicMemory, ChaosPlan, ConsensusService, FaultPlan, FaultyMemory, SupervisorOptions,
};
use mc_telemetry::json::Obj;
use mc_telemetry::HistogramSnapshot;

const WORKERS: usize = 2;
/// Proposals per chaos run: enough to spread over both rings and force
/// several drains per worker.
const CHAOS_OPS: u64 = 192;
const SUBMIT_BATCH: usize = 32;
const VALUES: u64 = 64;

/// One cell of the sweep: a named chaos plan shape.
#[derive(Debug, Clone, Copy)]
struct PlanCell {
    label: &'static str,
    panic_every: u64,
    max_panics: u32,
    stall_every: u64,
    stall_us: u64,
    lost: f64,
    stale: f64,
}

impl PlanCell {
    fn plan(&self, seed: u64) -> ChaosPlan {
        let mut plan = ChaosPlan::seeded(seed ^ 0x000C_4A05);
        if self.max_panics > 0 {
            plan = plan.panic_every(self.panic_every, self.max_panics);
        }
        if self.stall_every > 0 {
            plan = plan.stall_every(self.stall_every, Duration::from_micros(self.stall_us));
        }
        let mut faults = FaultPlan::seeded(seed ^ 0xFA17);
        if self.lost > 0.0 {
            faults = faults.lost_prob_writes(self.lost);
        }
        if self.stale > 0.0 {
            faults = faults.stale_reads(self.stale);
        }
        plan.faults(faults)
    }
}

const PLANS: &[PlanCell] = &[
    PlanCell {
        label: "none",
        panic_every: 0,
        max_panics: 0,
        stall_every: 0,
        stall_us: 0,
        lost: 0.0,
        stale: 0.0,
    },
    PlanCell {
        label: "panic@1x2",
        panic_every: 1,
        max_panics: 2,
        stall_every: 0,
        stall_us: 0,
        lost: 0.0,
        stale: 0.0,
    },
    PlanCell {
        label: "panic@3x3",
        panic_every: 3,
        max_panics: 3,
        stall_every: 0,
        stall_us: 0,
        lost: 0.0,
        stale: 0.0,
    },
    PlanCell {
        label: "stall@2",
        panic_every: 0,
        max_panics: 0,
        stall_every: 2,
        stall_us: 300,
        lost: 0.0,
        stale: 0.0,
    },
    PlanCell {
        label: "panic+stall",
        panic_every: 2,
        max_panics: 2,
        stall_every: 3,
        stall_us: 200,
        lost: 0.0,
        stale: 0.0,
    },
    PlanCell {
        label: "panic+faults",
        panic_every: 2,
        max_panics: 2,
        stall_every: 0,
        stall_us: 0,
        lost: 0.3,
        stale: 0.2,
    },
    PlanCell {
        label: "kitchen-sink",
        panic_every: 1,
        max_panics: 3,
        stall_every: 4,
        stall_us: 200,
        lost: 0.2,
        stale: 0.2,
    },
];

/// One supervision policy under test.
#[derive(Debug, Clone, Copy)]
struct Policy {
    label: &'static str,
    restart_budget: u32,
    base_backoff_us: u64,
    max_backoff_us: u64,
}

impl Policy {
    fn supervisor(&self) -> SupervisorOptions {
        SupervisorOptions {
            restart_budget: self.restart_budget,
            base_backoff: Duration::from_micros(self.base_backoff_us),
            max_backoff: Duration::from_micros(self.max_backoff_us),
        }
    }
}

const POLICIES: &[Policy] = &[
    Policy {
        label: "tight",
        restart_budget: 3,
        base_backoff_us: 200,
        max_backoff_us: 2_000,
    },
    Policy {
        label: "roomy",
        restart_budget: 8,
        base_backoff_us: 50,
        max_backoff_us: 500,
    },
];

#[derive(Debug, Default)]
struct CellStats {
    runs: u64,
    lost: u64,
    duplicates: u64,
    restarts: u64,
    resubmitted: u64,
    poisoned_runs: u64,
    recovery: Vec<HistogramSnapshot>,
}

/// Merges per-run recovery histograms by bucket upper bound (all runtime
/// histograms share the same log-scale boundaries).
fn merge_histograms(parts: &[HistogramSnapshot]) -> HistogramSnapshot {
    use std::collections::BTreeMap;
    let mut buckets: BTreeMap<u64, u64> = BTreeMap::new();
    let mut merged = HistogramSnapshot {
        count: 0,
        sum: 0,
        max: 0,
        buckets: Vec::new(),
    };
    for part in parts {
        merged.count += part.count;
        merged.sum += part.sum;
        merged.max = merged.max.max(part.max);
        for &(upper, n) in &part.buckets {
            *buckets.entry(upper).or_insert(0) += n;
        }
    }
    merged.buckets = buckets.into_iter().collect();
    merged
}

/// One seeded chaos run: submit `CHAOS_OPS` proposals through a
/// chaos-injected service, wait every handle, and reconcile the ledger.
fn run_chaos(cell: &PlanCell, policy: &Policy, seed: u64, stats: &mut CellStats) {
    let plan = cell.plan(seed);
    let service = ConsensusService::builder()
        .n(2)
        .values(VALUES)
        .participants(1)
        .workers(WORKERS)
        .shards(WORKERS)
        .seed(seed)
        .memory(FaultyMemory::new(AtomicMemory, plan.faults))
        .chaos(plan)
        .supervisor(policy.supervisor())
        .build();

    stats.runs += 1;
    let mut handles = Vec::with_capacity(CHAOS_OPS as usize);
    for chunk_start in (0..CHAOS_OPS).step_by(SUBMIT_BATCH) {
        let chunk: Vec<(u64, u64)> = (chunk_start
            ..(chunk_start + SUBMIT_BATCH as u64).min(CHAOS_OPS))
            .map(|i| (i, i % VALUES))
            .collect();
        for result in service.submit_batch(&chunk) {
            handles.push(result.expect("Block admits every proposal"));
        }
    }
    for (i, handle) in handles.into_iter().enumerate() {
        match handle.wait() {
            Ok(v) if v == i as u64 % VALUES => {}
            _ => stats.lost += 1,
        }
    }

    let telemetry = Arc::clone(service.engine().telemetry_handle());
    drop(service);

    // Exactly-once ledger: every submission admitted once, decided once,
    // and nothing left queued or in flight after the workers join.
    if telemetry.proposals_enqueued() != CHAOS_OPS
        || telemetry.decisions() != CHAOS_OPS
        || telemetry.queue_depth() != 0
    {
        stats.duplicates += 1;
    }
    let restarts = telemetry.worker_restarts();
    stats.restarts += restarts;
    stats.resubmitted += telemetry.resubmitted_cells();
    if restarts > u64::from(policy.restart_budget) * WORKERS as u64 {
        stats.poisoned_runs += 1;
    }
    stats
        .recovery
        .push(telemetry.worker_recovery_ns().snapshot());
}

/// Throughput leg for the supervision-overhead gate: 4 producers pushing
/// `ops` proposals each through `submit_batch`, empty chaos plan, under
/// the given supervisor. Returns ops/sec.
fn run_throughput(ops: u64, supervisor: SupervisorOptions) -> f64 {
    const PRODUCERS: usize = 4;
    let service = Arc::new(
        ConsensusService::builder()
            .n(2)
            .values(2)
            .participants(1)
            .supervisor(supervisor)
            .build(),
    );
    for id in 0..256 {
        let handle = service.submit(id, id % 2).expect("warmup admits");
        handle.wait().expect("warmup decides");
    }
    let barrier = Arc::new(Barrier::new(PRODUCERS + 1));
    let threads: Vec<_> = (0..PRODUCERS as u64)
        .map(|p| {
            let service = Arc::clone(&service);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let base = 1_000 + p * ops;
                barrier.wait();
                let mut handles = Vec::with_capacity(ops as usize);
                for chunk_start in (0..ops).step_by(64) {
                    let chunk: Vec<(u64, u64)> = (chunk_start..(chunk_start + 64).min(ops))
                        .map(|i| (base + i, i % 2))
                        .collect();
                    for result in service.submit_batch(&chunk) {
                        handles.push(result.expect("Block admits every proposal"));
                    }
                }
                for handle in handles {
                    std::hint::black_box(handle.wait().expect("every proposal decides"));
                }
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    for t in threads {
        t.join().expect("producer thread");
    }
    (PRODUCERS as u64 * ops) as f64 / start.elapsed().as_secs_f64()
}

/// Silences the default panic hook for the campaign's own injected worker
/// panics — hundreds of identical backtraces would drown the report —
/// while leaving every unexpected panic loud.
fn quiet_injected_panics() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let message = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !message.starts_with("chaos: injected") {
            default_hook(info);
        }
    }));
}

fn run(seeds: u64, ops: u64, trials: u64, min_ratio: f64, out_path: &str) -> Result<(), String> {
    quiet_injected_panics();
    eprintln!(
        "chaos campaign: {} plans x {} policies x {seeds} seeds, \
         {CHAOS_OPS} proposals per run, {WORKERS} workers",
        PLANS.len(),
        POLICIES.len(),
    );

    let mut pass = true;
    let mut total_restarts = 0u64;
    let mut total_resubmitted = 0u64;
    let mut total_lost = 0u64;
    let mut total_duplicates = 0u64;
    let mut all_recovery: Vec<HistogramSnapshot> = Vec::new();

    for cell in PLANS {
        for policy in POLICIES {
            // A plan whose per-worker panic budget exceeds the policy's
            // restart budget is *expected* to poison; the campaign only
            // sweeps recoverable combinations, so skip those cells.
            if cell.max_panics > policy.restart_budget {
                continue;
            }
            let mut stats = CellStats::default();
            for seed in 0..seeds {
                run_chaos(cell, policy, seed.wrapping_mul(0x9E37_79B9) + 1, &mut stats);
            }
            let recovery = merge_histograms(&stats.recovery);
            let cell_ok = stats.lost == 0 && stats.duplicates == 0 && stats.poisoned_runs == 0;
            if !cell_ok {
                pass = false;
            }
            total_restarts += stats.restarts;
            total_resubmitted += stats.resubmitted;
            total_lost += stats.lost;
            total_duplicates += stats.duplicates;
            all_recovery.push(recovery.clone());

            let mut line = Obj::new();
            line.str_field("bench", "chaos_campaign")
                .str_field("plan", cell.label)
                .str_field("policy", policy.label)
                .u64_field("seeds", stats.runs)
                .u64_field("lost", stats.lost)
                .u64_field("duplicate_ledgers", stats.duplicates)
                .u64_field("worker_restarts", stats.restarts)
                .u64_field("resubmitted_cells", stats.resubmitted)
                .u64_field("over_budget_runs", stats.poisoned_runs)
                .u64_field("recovery_count", recovery.count)
                .u64_field("recovery_p50_ns", recovery.quantile_upper(0.50))
                .u64_field("recovery_p99_ns", recovery.quantile_upper(0.99))
                .str_field("verdict", if cell_ok { "exactly-once" } else { "VIOLATED" });
            println!("{}", line.finish());
            eprintln!(
                "{:<13} / {:<5} restarts={:<3} resubmitted={:<4} lost={} dup={} {}",
                cell.label,
                policy.label,
                stats.restarts,
                stats.resubmitted,
                stats.lost,
                stats.duplicates,
                if cell_ok { "ok" } else { "VIOLATED" },
            );
        }
    }

    // Supervision-overhead gate: the supervised service with an empty
    // chaos plan must keep pace with the legacy poison-on-first-panic
    // configuration. Best of `trials` per leg — both are multi-threaded
    // wall-clock measurements, and interference only slows a trial down.
    eprintln!("supervision overhead: 4 producers x {ops} proposals, best of {trials}");
    let legacy = SupervisorOptions {
        restart_budget: 0,
        ..SupervisorOptions::default()
    };
    let legacy_per_sec = (0..trials)
        .map(|_| run_throughput(ops, legacy))
        .fold(f64::MIN, f64::max);
    let supervised_per_sec = (0..trials)
        .map(|_| run_throughput(ops, SupervisorOptions::default()))
        .fold(f64::MIN, f64::max);
    let ratio = supervised_per_sec / legacy_per_sec;
    let ratio_ok = ratio >= min_ratio;
    if !ratio_ok {
        pass = false;
    }
    eprintln!(
        "supervised {supervised_per_sec:.0} ops/s vs legacy {legacy_per_sec:.0} ops/s \
         (ratio {ratio:.3}, gate {min_ratio:.2})"
    );

    let pooled = merge_histograms(&all_recovery);
    let mut summary = Obj::new();
    summary
        .str_field("bench", "chaos_recovery")
        .u64_field("plans", PLANS.len() as u64)
        .u64_field("policies", POLICIES.len() as u64)
        .u64_field("seeds_per_cell", seeds)
        .u64_field("workers", WORKERS as u64)
        .u64_field("proposals_per_run", CHAOS_OPS)
        .u64_field("decisions_lost", total_lost)
        .u64_field("duplicate_ledgers", total_duplicates)
        .u64_field("worker_restarts", total_restarts)
        .u64_field("resubmitted_cells", total_resubmitted)
        .u64_field("recovery_count", pooled.count)
        .u64_field("recovery_p50_ns", pooled.quantile_upper(0.50))
        .u64_field("recovery_p99_ns", pooled.quantile_upper(0.99))
        .u64_field("recovery_max_ns", pooled.max)
        .f64_field("legacy_ops_per_sec", legacy_per_sec)
        .f64_field("supervised_ops_per_sec", supervised_per_sec)
        .f64_field("supervision_ratio", ratio)
        .f64_field("min_ratio", min_ratio)
        .bool_field("pass", pass);
    let json = summary.finish();
    println!("{json}");
    std::fs::write(out_path, format!("{json}\n"))
        .map_err(|e| format!("writing {out_path}: {e}"))?;
    eprintln!("report written to {out_path}");

    if !pass {
        return Err(if ratio_ok {
            "chaos campaign: decisions were lost, duplicated, or over budget".to_string()
        } else {
            format!(
                "supervision overhead gate: supervised leg sustained only \
                 {ratio:.3}x the legacy leg (gate {min_ratio:.2}x)"
            )
        });
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut seeds = 5u64;
    let mut ops = 10_000u64;
    let mut trials = 3u64;
    let mut min_ratio = 0.95f64;
    let mut out_path = "BENCH_chaos_recovery.json".to_string();
    let usage = "usage: chaos_campaign [--seeds <K>] [--ops <N>] [--trials <T>] \
                 [--min-ratio <R>] [--out <path>]";
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seeds" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(v)) if v > 0 => seeds = v,
                _ => {
                    eprintln!("--seeds needs a positive integer\n{usage}");
                    return ExitCode::FAILURE;
                }
            },
            "--ops" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(v)) if v > 0 => ops = v,
                _ => {
                    eprintln!("--ops needs a positive integer\n{usage}");
                    return ExitCode::FAILURE;
                }
            },
            "--trials" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(v)) if v > 0 => trials = v,
                _ => {
                    eprintln!("--trials needs a positive integer\n{usage}");
                    return ExitCode::FAILURE;
                }
            },
            "--min-ratio" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(v)) if v > 0.0 => min_ratio = v,
                _ => {
                    eprintln!("--min-ratio needs a positive number\n{usage}");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("--out needs a path\n{usage}");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown argument: {other}\n{usage}");
                return ExitCode::FAILURE;
            }
        }
    }
    match run(seeds, ops, trials, min_ratio, &out_path) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
