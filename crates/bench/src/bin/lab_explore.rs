//! Cross-substrate conformance campaign: for every seed, run the same
//! consensus protocol under the same adversary on the sim engine and on the
//! real-thread lab runtime, and demand identical decisions, traces, and
//! work accounting (plus `mc-check` replay agreement on the lab's script).
//!
//! Each seed also runs the *recycled* leg: the same protocol on the same
//! `(adversary, seed)` executed on a freshly built object and re-executed on
//! that object after `reset()` over a rearmed register file; the two runs
//! must be identical in decisions, trace, schedule/coin script, and
//! `WorkMetrics`. Any divergence means a recycled generation-tagged object
//! is distinguishable from a fresh one, and fails the campaign.
//!
//! ```text
//! lab_explore [--seeds <K>] [--n <procs>]
//! ```
//!
//! Runs `K` seeds per protocol (default 10 000, the acceptance floor),
//! rotating through the adversary menu by seed. Exits nonzero on the first
//! divergence, printing the seed and adversary needed to reproduce it.

use std::process::ExitCode;

use mc_lab::{check_conformance, check_recycled_conformance, Conformance, Protocol};
use mc_sim::adversary::{ImpatienceExploiter, RandomScheduler, RoundRobin, SplitKeeper};
use mc_sim::sched::{PctScheduler, PriorityScheduler, QuantumScheduler};
use mc_sim::Adversary;

const PROTOCOLS: [Protocol; 3] = [
    Protocol::Binary,
    Protocol::Multivalued(6),
    Protocol::Coin { quorum_factor: 1 },
];

type MakeAdversary = Box<dyn Fn() -> Box<dyn Adversary + Send>>;

fn adversary_for(seed: u64) -> (&'static str, MakeAdversary) {
    match seed % 7 {
        0 => (
            "random",
            Box::new(move || Box::new(RandomScheduler::new(seed)) as _),
        ),
        1 => (
            "pct",
            Box::new(move || Box::new(PctScheduler::new(3, 500, seed)) as _),
        ),
        2 => ("round-robin", Box::new(|| Box::new(RoundRobin::new()) as _)),
        3 => (
            "split-keeper",
            Box::new(move || Box::new(SplitKeeper::new(seed)) as _),
        ),
        4 => (
            "impatience-exploiter",
            Box::new(|| Box::new(ImpatienceExploiter::new()) as _),
        ),
        5 => (
            "priority",
            Box::new(move || Box::new(PriorityScheduler::shuffled(8, seed)) as _),
        ),
        _ => (
            "quantum",
            Box::new(|| Box::new(QuantumScheduler::new(4)) as _),
        ),
    }
}

fn inputs_for(protocol: Protocol, seed: u64, n: usize) -> Vec<u64> {
    let m = match protocol {
        Protocol::Binary | Protocol::Coin { .. } => 2,
        Protocol::Multivalued(m) => m,
    };
    // Cheap deterministic spread: different seeds exercise different
    // input splits, including unanimous ones.
    (0..n)
        .map(|pid| (seed.wrapping_mul(31).wrapping_add(pid as u64 * 17)) % m)
        .collect()
}

fn main() -> ExitCode {
    let mut seeds: u64 = 10_000;
    let mut n: usize = 3;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seeds" => {
                seeds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seeds <K>");
            }
            "--n" => {
                n = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--n <procs>");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: lab_explore [--seeds <K>] [--n <procs>]");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut step_limited = 0u64;
    for protocol in PROTOCOLS {
        for seed in 0..seeds {
            let (name, make) = adversary_for(seed);
            let inputs = inputs_for(protocol, seed, n);
            match check_conformance(protocol, &inputs, &make, seed, 200_000) {
                Ok(Conformance::Agreed { .. }) => {}
                Ok(Conformance::BothStepLimited) => step_limited += 1,
                Err(divergence) => {
                    eprintln!(
                        "DIVERGENCE protocol={protocol} seed={seed} adversary={name} \
                         inputs={inputs:?}: {divergence}"
                    );
                    return ExitCode::FAILURE;
                }
            }
            match check_recycled_conformance(protocol, &inputs, &make, seed, 200_000) {
                Ok(_) => {}
                Err(divergence) => {
                    eprintln!(
                        "RECYCLE DIVERGENCE protocol={protocol} seed={seed} adversary={name} \
                         inputs={inputs:?}: {divergence}"
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
        println!("{protocol}: {seeds} seeds conformed, fresh and recycled (n={n})");
    }
    if step_limited > 0 {
        println!("note: {step_limited} runs hit the step limit on both substrates");
    }
    println!("lab conformance: PASS");
    ExitCode::SUCCESS
}
