//! A command-line driver for the simulator: run any protocol under any
//! adversary and print outputs, work, and (over trials) agreement rates.
//!
//! ```text
//! simulate --protocol binary --n 8 --adversary split-keeper --trials 200
//! simulate --protocol multivalued:16 --inputs random --seed 7 --trace
//! simulate --protocol ratifier-only --adversary quantum:4 --inputs 0,1,0
//! simulate --protocol conciliator --adversary noisy:0.5 --n 32
//! ```
//!
//! Run `simulate --help` for the full grammar.

use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

use mc_core::protocol::{ratifier_only, ConsensusBuilder};
use mc_core::{FirstMoverConciliator, Ratifier};
use mc_model::{properties, ObjectSpec, Value};
use mc_sim::adversary::{
    Adversary, FixedOrder, ImpatienceExploiter, RandomScheduler, RoundRobin, SplitKeeper,
    WriteBlocker,
};
use mc_sim::harness::{self, inputs};
use mc_sim::observe;
use mc_sim::sched::{NoisyScheduler, PriorityScheduler, QuantumScheduler};
use mc_sim::EngineConfig;
use mc_telemetry::{json::Obj, JsonlRecorder, NoopRecorder, Recorder};

const HELP: &str = "\
simulate — run modular-consensus protocols in the model

USAGE:
    simulate [OPTIONS]

OPTIONS:
    --protocol <P>    binary | multivalued:<m> | cil:<m> | conciliator |
                      conciliator-fixed | ratifier:<m> | ratifier-only
                      (default: binary)
    --n <N>           number of processes (default: 8; ignored if --inputs
                      gives an explicit list)
    --inputs <I>      alternating | unanimous:<v> | random | dissenter |
                      <v0,v1,...> (default: alternating)
    --adversary <A>   round-robin | random | bursty:<k> | write-blocker |
                      exploiter | split-keeper | noisy:<sigma> | priority |
                      quantum:<q> (default: random)
    --seed <S>        base seed (default: 42)
    --trials <T>      independent runs (default: 1)
    --max-steps <K>   step limit per run (default: 10000000)
    --trace           print the execution trace (first trial only)
    --cheap-collect   enable the cheap-collect model
    --telemetry <F>   stream one JSONL telemetry event per operation (plus a
                      work_summary per trial) to file F; forces trace
                      recording internally
    --help            print this help

The final stdout line is always a machine-readable JSON summary
(`\"ev\":\"simulate_summary\"`).
";

#[derive(Debug)]
struct Options {
    protocol: String,
    n: usize,
    inputs: String,
    adversary: String,
    seed: u64,
    trials: usize,
    max_steps: u64,
    trace: bool,
    cheap_collect: bool,
    telemetry: Option<String>,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            protocol: "binary".into(),
            n: 8,
            inputs: "alternating".into(),
            adversary: "random".into(),
            seed: 42,
            trials: 1,
            max_steps: 10_000_000,
            trace: false,
            cheap_collect: false,
            telemetry: None,
        }
    }
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = || {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{arg} needs a value"))
        };
        match arg.as_str() {
            "--protocol" => opts.protocol = take()?.to_string(),
            "--n" => opts.n = take()?.parse().map_err(|e| format!("--n: {e}"))?,
            "--inputs" => opts.inputs = take()?.to_string(),
            "--adversary" => opts.adversary = take()?.to_string(),
            "--seed" => opts.seed = take()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--trials" => opts.trials = take()?.parse().map_err(|e| format!("--trials: {e}"))?,
            "--max-steps" => {
                opts.max_steps = take()?.parse().map_err(|e| format!("--max-steps: {e}"))?
            }
            "--trace" => opts.trace = true,
            "--cheap-collect" => opts.cheap_collect = true,
            "--telemetry" => opts.telemetry = Some(take()?.to_string()),
            "--help" | "-h" => return Err("help".into()),
            other => return Err(format!("unknown option {other}")),
        }
    }
    if opts.trials == 0 {
        return Err("--trials must be at least 1".into());
    }
    Ok(opts)
}

/// Splits `name:param` into the name and an optional parameter string.
fn split_param(s: &str) -> (&str, Option<&str>) {
    match s.split_once(':') {
        Some((name, param)) => (name, Some(param)),
        None => (s, None),
    }
}

fn build_protocol(spec: &str) -> Result<(Arc<dyn ObjectSpec>, u64), String> {
    let (name, param) = split_param(spec);
    let m_of = |default: u64| -> Result<u64, String> {
        match param {
            Some(p) => p.parse().map_err(|e| format!("protocol parameter: {e}")),
            None => Ok(default),
        }
    };
    let built: (Arc<dyn ObjectSpec>, u64) = match name {
        "binary" => (Arc::new(ConsensusBuilder::binary().build()), 2),
        "multivalued" => {
            let m = m_of(4)?;
            (Arc::new(ConsensusBuilder::multivalued(m).build()), m)
        }
        "cil" => {
            let m = m_of(2)?;
            (Arc::new(ConsensusBuilder::cil_baseline(m).build()), m)
        }
        "conciliator" => (Arc::new(FirstMoverConciliator::impatient()), u64::MAX),
        "conciliator-fixed" => (Arc::new(FirstMoverConciliator::fixed(1.0)), u64::MAX),
        "ratifier" => {
            let m = m_of(2)?;
            let r = if m <= 2 {
                Ratifier::binary()
            } else {
                Ratifier::binomial(m)
            };
            let cap = r.capacity();
            (Arc::new(r), cap)
        }
        "ratifier-only" => (Arc::new(ratifier_only(Arc::new(Ratifier::binary()))), 2),
        other => return Err(format!("unknown protocol {other}")),
    };
    Ok(built)
}

fn build_inputs(spec: &str, n: usize, m: u64, seed: u64) -> Result<Vec<Value>, String> {
    let (name, param) = split_param(spec);
    let m_eff = m.clamp(2, 1 << 20);
    match name {
        "alternating" => Ok(inputs::alternating(n, m_eff.min(2))),
        "unanimous" => {
            let v = param
                .unwrap_or("1")
                .parse()
                .map_err(|e| format!("inputs: {e}"))?;
            Ok(inputs::unanimous(n, v))
        }
        "random" => Ok(inputs::random(n, m_eff, seed)),
        "dissenter" => Ok(inputs::dissenter(n)),
        list => list
            .split(',')
            .map(|v| v.trim().parse().map_err(|e| format!("inputs {v:?}: {e}")))
            .collect(),
    }
}

fn build_adversary(spec: &str, n: usize, seed: u64) -> Result<Box<dyn Adversary>, String> {
    let (name, param) = split_param(spec);
    let parse_f64 = |d: f64| -> Result<f64, String> {
        param.map_or(Ok(d), |p| p.parse().map_err(|e| format!("adversary: {e}")))
    };
    let parse_u64 = |d: u64| -> Result<u64, String> {
        param.map_or(Ok(d), |p| p.parse().map_err(|e| format!("adversary: {e}")))
    };
    Ok(match name {
        "round-robin" => Box::new(RoundRobin::new()),
        "random" => Box::new(RandomScheduler::new(seed)),
        "bursty" => Box::new(FixedOrder::bursty(n, parse_u64(4)? as usize)),
        "write-blocker" => Box::new(WriteBlocker::new()),
        "exploiter" => Box::new(ImpatienceExploiter::new()),
        "split-keeper" => Box::new(SplitKeeper::new(seed)),
        "noisy" => Box::new(NoisyScheduler::new(n, parse_f64(0.5)?, seed)),
        "priority" => Box::new(PriorityScheduler::shuffled(n, seed)),
        "quantum" => Box::new(QuantumScheduler::new(parse_u64(4)?)),
        other => return Err(format!("unknown adversary {other}")),
    })
}

fn run(opts: &Options) -> Result<(), String> {
    let (spec, m) = build_protocol(&opts.protocol)?;
    let first_inputs = build_inputs(&opts.inputs, opts.n, m, opts.seed)?;
    let n = first_inputs.len();
    let mut config = EngineConfig::default().with_max_steps(opts.max_steps);
    if opts.cheap_collect {
        config = config.with_cheap_collect();
    }
    let recorder: Arc<dyn Recorder> = match &opts.telemetry {
        Some(path) => Arc::new(
            JsonlRecorder::to_file(Path::new(path))
                .map_err(|e| format!("--telemetry {path}: {e}"))?,
        ),
        None => Arc::new(NoopRecorder),
    };

    println!(
        "protocol {} | n = {n} | adversary {} | seed {} | trials {}",
        spec.name(),
        opts.adversary,
        opts.seed,
        opts.trials
    );

    let mut agreements = 0usize;
    let mut decided = 0usize;
    let mut total_work = Vec::new();
    let mut individual_work = Vec::new();
    for trial in 0..opts.trials {
        let seed = opts.seed.wrapping_add(trial as u64 * 0x9E37);
        let ins = build_inputs(&opts.inputs, opts.n, m, seed)?;
        let mut adversary = build_adversary(&opts.adversary, n, seed)?;
        // Telemetry replays the trace, so recording must be on for every
        // instrumented trial.
        let trial_config = if (opts.trace && trial == 0) || recorder.enabled() {
            config.clone().with_trace()
        } else {
            config.clone()
        };
        let outcome =
            harness::run_object(spec.as_ref(), &ins, adversary.as_mut(), seed, &trial_config)
                .map_err(|e| format!("trial {trial}: {e}"))?;
        observe::export_run(
            seed,
            outcome.trace.as_ref(),
            &outcome.metrics,
            recorder.as_ref(),
        );
        if trial == 0 {
            println!("\ninputs : {ins:?}");
            let rendered: Vec<String> = outcome.outputs.iter().map(|d| d.to_string()).collect();
            println!("outputs: {rendered:?}");
            println!("work   : {}", outcome.metrics);
            if let Err(v) = properties::check_weak_consensus(&ins, &outcome.outputs) {
                println!("WARNING: {v}");
            }
            if opts.trace {
                if let Some(trace) = &outcome.trace {
                    println!("\ntrace:\n{trace}");
                }
            }
        }
        if outcome.agreed() {
            agreements += 1;
        }
        if outcome.outputs.iter().all(|d| d.is_decided()) {
            decided += 1;
        }
        total_work.push(outcome.metrics.total_work());
        individual_work.push(outcome.metrics.individual_work());
    }

    if opts.trials > 1 {
        let mean = |v: &[u64]| v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64;
        println!(
            "\nover {} trials: agreement {}/{} | all-decided {}/{} | mean total {:.1} | \
             mean indiv {:.1} | max indiv {}",
            opts.trials,
            agreements,
            opts.trials,
            decided,
            opts.trials,
            mean(&total_work),
            mean(&individual_work),
            individual_work.iter().max().unwrap_or(&0),
        );
    }

    recorder
        .flush()
        .map_err(|e| format!("flushing telemetry: {e}"))?;

    let mean = |v: &[u64]| v.iter().map(|&x| x as f64).sum::<f64>() / v.len().max(1) as f64;
    let mut summary = Obj::new();
    summary
        .str_field("ev", "simulate_summary")
        .str_field("protocol", &spec.name())
        .u64_field("n", n as u64)
        .str_field("adversary", &opts.adversary)
        .u64_field("seed", opts.seed)
        .u64_field("trials", opts.trials as u64)
        .u64_field("agreements", agreements as u64)
        .u64_field("all_decided", decided as u64)
        .f64_field("mean_total_work", mean(&total_work))
        .f64_field("mean_individual_work", mean(&individual_work))
        .u64_field(
            "max_individual_work",
            individual_work.iter().copied().max().unwrap_or(0),
        );
    if let Some(path) = &opts.telemetry {
        summary.str_field("telemetry", path);
    }
    println!("{}", summary.finish());
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(opts) => match run(&opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) if e == "help" => {
            print!("{HELP}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{HELP}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        parse_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn defaults() {
        let opts = parse(&[]).unwrap();
        assert_eq!(opts.protocol, "binary");
        assert_eq!(opts.n, 8);
        assert_eq!(opts.trials, 1);
    }

    #[test]
    fn full_flag_set() {
        let opts = parse(&[
            "--protocol",
            "multivalued:16",
            "--n",
            "4",
            "--inputs",
            "random",
            "--adversary",
            "noisy:0.9",
            "--seed",
            "7",
            "--trials",
            "5",
            "--max-steps",
            "1000",
            "--trace",
            "--cheap-collect",
        ])
        .unwrap();
        assert_eq!(opts.protocol, "multivalued:16");
        assert_eq!(opts.n, 4);
        assert_eq!(opts.adversary, "noisy:0.9");
        assert_eq!(opts.max_steps, 1000);
        assert!(opts.trace && opts.cheap_collect);
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(parse(&["--bogus"]).unwrap_err().contains("unknown option"));
    }

    #[test]
    fn protocols_build() {
        for p in [
            "binary",
            "multivalued:8",
            "cil:4",
            "conciliator",
            "conciliator-fixed",
            "ratifier:16",
            "ratifier-only",
        ] {
            build_protocol(p).unwrap_or_else(|e| panic!("{p}: {e}"));
        }
        assert!(build_protocol("nope").is_err());
    }

    #[test]
    fn inputs_build() {
        assert_eq!(
            build_inputs("alternating", 4, 2, 0).unwrap(),
            vec![0, 1, 0, 1]
        );
        assert_eq!(build_inputs("unanimous:3", 2, 8, 0).unwrap(), vec![3, 3]);
        assert_eq!(build_inputs("5,6,7", 99, 8, 0).unwrap(), vec![5, 6, 7]);
        assert_eq!(build_inputs("dissenter", 3, 2, 0).unwrap(), vec![0, 0, 1]);
        assert!(build_inputs("x,y", 2, 2, 0).is_err());
    }

    #[test]
    fn adversaries_build() {
        for a in [
            "round-robin",
            "random",
            "bursty:3",
            "write-blocker",
            "exploiter",
            "split-keeper",
            "noisy:0.4",
            "priority",
            "quantum:4",
        ] {
            build_adversary(a, 4, 1).unwrap_or_else(|e| panic!("{a}: {e}"));
        }
        assert!(build_adversary("nope", 4, 1).is_err());
    }

    #[test]
    fn end_to_end_run() {
        let opts = parse(&["--protocol", "binary", "--n", "4", "--trials", "3"]).unwrap();
        run(&opts).unwrap();
    }

    #[test]
    fn telemetry_flag_parses() {
        let opts = parse(&["--telemetry", "/tmp/out.jsonl"]).unwrap();
        assert_eq!(opts.telemetry.as_deref(), Some("/tmp/out.jsonl"));
        assert!(parse(&["--telemetry"]).is_err());
    }

    #[test]
    fn telemetry_run_writes_valid_jsonl() {
        let path = std::env::temp_dir().join("simulate_telemetry_test.jsonl");
        let opts = parse(&[
            "--protocol",
            "binary",
            "--n",
            "4",
            "--trials",
            "2",
            "--seed",
            "3",
            "--telemetry",
            path.to_str().unwrap(),
        ])
        .unwrap();
        run(&opts).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(!lines.is_empty());
        for line in &lines {
            mc_telemetry::json::validate(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        // One work_summary per trial, each preceded by its op events.
        let summaries = lines
            .iter()
            .filter(|l| l.contains(r#""ev":"work_summary""#))
            .count();
        assert_eq!(summaries, 2);
        std::fs::remove_file(&path).ok();
    }
}
