//! Measures what the fault-injection layer costs: bare `AtomicMemory`
//! versus `FaultyMemory` with an empty plan (must be near-zero — the
//! passthrough path is one branch per operation, no lock, no allocation)
//! versus an active plan (the priced path: a mutex + seeded draw per
//! operation).
//!
//! ```text
//! fault_overhead [--iters <K>] [--out <path>]
//! ```
//!
//! Writes a JSON report (default `BENCH_fault_overhead.json`) with mean
//! wall-clock per consensus round and relative overheads, following the
//! `BENCH_telemetry_overhead.json` format. Because a full round is
//! dominated by thread spawn/join, the report also includes a
//! single-threaded per-operation microbenchmark (read + write +
//! probabilistic write loops on one register) where the layer's cost is
//! actually resolvable.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use mc_model::Probability;
use mc_runtime::{AtomicMemory, Consensus, FaultPlan, FaultyMemory, SharedMemory, SharedRegister};
use mc_telemetry::json::Obj;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const N: usize = 8;
const OPS: u64 = 1_000_000;

/// Mean nanoseconds per call of `f` over `iters` calls (after 3 warmups).
fn time_ns(iters: u64, mut f: impl FnMut(u64)) -> f64 {
    for i in 0..3 {
        f(u64::MAX - i);
    }
    let start = Instant::now();
    for i in 0..iters {
        f(i);
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// One real-thread binary consensus round across `N` threads in `memory`.
fn consensus_round<M: SharedMemory>(memory: M, seed: u64) -> u64 {
    let consensus = Arc::new(Consensus::builder().n(N).memory(memory).build());
    let handles: Vec<_> = (0..N as u64)
        .map(|t| {
            let c = Arc::clone(&consensus);
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(1_000).wrapping_add(t));
                c.decide(t % 2, &mut rng)
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).sum()
}

/// Mean nanoseconds per register operation: a single thread cycling
/// write → read → probabilistic write on one register of `memory`.
fn per_op_ns<M: SharedMemory>(memory: &M, ops: u64) -> f64 {
    let reg = memory.alloc();
    let half = Probability::new(0.5).expect("valid probability");
    let mut rng = SmallRng::seed_from_u64(0x0f_ae17);
    let start = Instant::now();
    for i in 0..ops / 3 {
        reg.write(i);
        std::hint::black_box(reg.read());
        std::hint::black_box(reg.prob_write(i, half, &mut rng));
    }
    start.elapsed().as_nanos() as f64 / (ops / 3 * 3) as f64
}

fn overhead_pct(base: f64, loaded: f64) -> f64 {
    if base <= 0.0 {
        0.0
    } else {
        (loaded - base) / base * 100.0
    }
}

fn run(iters: u64, out_path: &str) -> Result<(), String> {
    eprintln!("fault-layer overhead: {iters} iters per config, n={N}");

    let bare = time_ns(iters, |i| {
        std::hint::black_box(consensus_round(AtomicMemory, i));
    });
    let empty_plan = time_ns(iters, |i| {
        let memory = FaultyMemory::new(AtomicMemory, FaultPlan::none());
        std::hint::black_box(consensus_round(memory, i));
    });
    let active_plan = time_ns(iters, |i| {
        let plan = FaultPlan::seeded(i)
            .lost_prob_writes(0.1)
            .stale_reads(0.1)
            .delayed_writes(0.1, 3)
            .register_resets(0.01);
        let memory = FaultyMemory::new(AtomicMemory, plan);
        std::hint::black_box(consensus_round(memory, i));
    });

    let op_bare = per_op_ns(&AtomicMemory, OPS);
    let op_empty = per_op_ns(&FaultyMemory::new(AtomicMemory, FaultPlan::none()), OPS);
    let op_active = {
        let plan = FaultPlan::seeded(7)
            .lost_prob_writes(0.1)
            .stale_reads(0.1)
            .delayed_writes(0.1, 3)
            .register_resets(0.01);
        per_op_ns(&FaultyMemory::new(AtomicMemory, plan), OPS)
    };

    let mut report = Obj::new();
    report
        .str_field("bench", "fault_overhead")
        .u64_field("iters", iters)
        .u64_field("n", N as u64)
        .f64_field("bare_ns", bare)
        .f64_field("empty_plan_ns", empty_plan)
        .f64_field("empty_plan_overhead_pct", overhead_pct(bare, empty_plan))
        .f64_field("active_plan_ns", active_plan)
        .f64_field("active_plan_overhead_pct", overhead_pct(bare, active_plan))
        .u64_field("per_op_ops", OPS)
        .f64_field("per_op_bare_ns", op_bare)
        .f64_field("per_op_empty_plan_ns", op_empty)
        .f64_field("per_op_empty_plan_overhead_ns", op_empty - op_bare)
        .f64_field("per_op_active_plan_ns", op_active)
        .f64_field("per_op_active_plan_overhead_ns", op_active - op_bare);
    let json = report.finish();
    println!("{json}");
    std::fs::write(out_path, format!("{json}\n"))
        .map_err(|e| format!("writing {out_path}: {e}"))?;
    eprintln!("report written to {out_path}");
    Ok(())
}

fn main() -> ExitCode {
    let mut iters = 200u64;
    let mut out_path = "BENCH_fault_overhead.json".to_string();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--iters" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(v)) if v > 0 => iters = v,
                _ => {
                    eprintln!("--iters needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown option {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    match run(iters, &out_path) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
