//! Measures what telemetry costs: NoopRecorder (the default) versus a
//! JsonlRecorder streaming every event, on both execution substrates.
//!
//! ```text
//! telemetry_overhead [--iters <K>] [--out <path>]
//! ```
//!
//! Writes a JSON report (default `BENCH_telemetry_overhead.json`) with
//! mean wall-clock per run and the relative overhead. The sim pair also
//! includes the cost of trace recording, which JSONL export requires; the
//! runtime pair isolates the recorder itself.

use std::io;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use mc_core::protocol::ConsensusBuilder;
use mc_runtime::Consensus;
use mc_sim::adversary::RandomScheduler;
use mc_sim::harness::{self, inputs};
use mc_sim::{observe, EngineConfig};
use mc_telemetry::{json::Obj, JsonlRecorder, NoopRecorder, Recorder};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const N: usize = 8;
const M: u64 = 2;

/// Mean nanoseconds per call of `f` over `iters` calls (after 3 warmups).
fn time_ns(iters: u64, mut f: impl FnMut(u64)) -> f64 {
    for i in 0..3 {
        f(u64::MAX - i);
    }
    let start = Instant::now();
    for i in 0..iters {
        f(i);
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// One simulated consensus run; exports telemetry when `recorder` is live.
fn sim_run(seed: u64, recorder: &dyn Recorder) -> u64 {
    let spec = ConsensusBuilder::multivalued(M).build();
    let ins = inputs::random(N, M, seed);
    let config = if recorder.enabled() {
        EngineConfig::default().with_trace()
    } else {
        EngineConfig::default()
    };
    let out = harness::run_object(&spec, &ins, &mut RandomScheduler::new(seed), seed, &config)
        .expect("sim run");
    observe::export_run(seed, out.trace.as_ref(), &out.metrics, recorder);
    out.metrics.total_work()
}

/// One real-thread consensus round across `N` threads.
fn runtime_run(seed: u64, recorder: Arc<dyn Recorder>) -> u64 {
    let consensus = Arc::new(Consensus::builder().n(N).recorder(recorder).build());
    let handles: Vec<_> = (0..N as u64)
        .map(|t| {
            let c = Arc::clone(&consensus);
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(1_000).wrapping_add(t));
                c.decide(t % 2, &mut rng)
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).sum()
}

fn sink_recorder() -> Arc<dyn Recorder> {
    Arc::new(JsonlRecorder::new(Box::new(io::sink())))
}

fn overhead_pct(base: f64, loaded: f64) -> f64 {
    if base <= 0.0 {
        0.0
    } else {
        (loaded - base) / base * 100.0
    }
}

fn run(iters: u64, out_path: &str) -> Result<(), String> {
    eprintln!("telemetry overhead: {iters} iters per config, n={N}");

    let sim_noop = time_ns(iters, |i| {
        std::hint::black_box(sim_run(i, &NoopRecorder));
    });
    let sim_jsonl = {
        let recorder = sink_recorder();
        time_ns(iters, |i| {
            std::hint::black_box(sim_run(i, recorder.as_ref()));
        })
    };
    let runtime_noop = {
        let recorder: Arc<dyn Recorder> = Arc::new(NoopRecorder);
        time_ns(iters, |i| {
            std::hint::black_box(runtime_run(i, Arc::clone(&recorder)));
        })
    };
    let runtime_jsonl = {
        let recorder = sink_recorder();
        time_ns(iters, |i| {
            std::hint::black_box(runtime_run(i, Arc::clone(&recorder)));
        })
    };

    let mut report = Obj::new();
    report
        .str_field("bench", "telemetry_overhead")
        .u64_field("iters", iters)
        .u64_field("n", N as u64)
        .f64_field("sim_noop_ns", sim_noop)
        .f64_field("sim_jsonl_ns", sim_jsonl)
        .f64_field("sim_overhead_pct", overhead_pct(sim_noop, sim_jsonl))
        .f64_field("runtime_noop_ns", runtime_noop)
        .f64_field("runtime_jsonl_ns", runtime_jsonl)
        .f64_field(
            "runtime_overhead_pct",
            overhead_pct(runtime_noop, runtime_jsonl),
        );
    let json = report.finish();
    println!("{json}");
    std::fs::write(out_path, format!("{json}\n"))
        .map_err(|e| format!("writing {out_path}: {e}"))?;
    eprintln!("report written to {out_path}");
    Ok(())
}

fn main() -> ExitCode {
    let mut iters = 200u64;
    let mut out_path = "BENCH_telemetry_overhead.json".to_string();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--iters" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(v)) if v > 0 => iters = v,
                _ => {
                    eprintln!("--iters needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown option {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    match run(iters, &out_path) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
