//! Criterion bench backing E3: wall-clock cost of a ratifier run per quorum
//! scheme, across the value-alphabet size m.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mc_core::Ratifier;
use mc_sim::adversary::RandomScheduler;
use mc_sim::harness::{self, inputs};
use mc_sim::EngineConfig;
use std::hint::black_box;

fn bench_ratifiers(c: &mut Criterion) {
    let mut group = c.benchmark_group("ratifier");
    group.sample_size(50);
    let n = 8;
    for m in [2u64, 64, 4096] {
        for (scheme, make) in [
            ("binomial", Ratifier::binomial as fn(u64) -> Ratifier),
            ("bitvector", Ratifier::bitvector as fn(u64) -> Ratifier),
        ] {
            group.bench_with_input(BenchmarkId::new(scheme, m), &m, |b, &m| {
                let spec = make(m);
                let mut seed = 0u64;
                b.iter(|| {
                    seed = seed.wrapping_add(1);
                    let ins = inputs::random(n, m, seed);
                    let out = harness::run_object(
                        &spec,
                        &ins,
                        &mut RandomScheduler::new(seed),
                        seed,
                        &EngineConfig::default(),
                    )
                    .unwrap();
                    black_box(out.metrics.individual_work())
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ratifiers);
criterion_main!(benches);
