//! Criterion bench backing E4/E5: end-to-end consensus in the simulator,
//! across n and m.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mc_core::protocol::ConsensusBuilder;
use mc_sim::adversary::RandomScheduler;
use mc_sim::harness::{self, inputs};
use mc_sim::EngineConfig;
use std::hint::black_box;

fn bench_consensus(c: &mut Criterion) {
    let mut group = c.benchmark_group("consensus");
    group.sample_size(30);
    for n in [8usize, 32, 128] {
        for m in [2u64, 64] {
            let spec = ConsensusBuilder::multivalued(m).build();
            group.bench_with_input(BenchmarkId::new(format!("m{m}"), n), &n, |b, &n| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed = seed.wrapping_add(1);
                    let ins = inputs::random(n, m, seed);
                    let out = harness::run_object(
                        &spec,
                        &ins,
                        &mut RandomScheduler::new(seed),
                        seed,
                        &EngineConfig::default(),
                    )
                    .unwrap();
                    black_box(out.metrics.total_work())
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_consensus);
criterion_main!(benches);
