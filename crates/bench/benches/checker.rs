//! Criterion bench backing E13: state-space throughput of the exhaustive
//! checker.

use criterion::{criterion_group, criterion_main, Criterion};
use mc_check::{CheckConfig, Explorer};
use mc_core::{FirstMoverConciliator, Ratifier};
use std::hint::black_box;

fn bench_checker(c: &mut Criterion) {
    let mut group = c.benchmark_group("checker");
    group.sample_size(20);

    group.bench_function("ratifier_n2_safety", |b| {
        b.iter(|| {
            let report = Explorer::new(Ratifier::binary(), vec![0, 1])
                .with_config(CheckConfig {
                    check_acceptance: true,
                    ..CheckConfig::default()
                })
                .verify_safety()
                .unwrap();
            black_box(report.complete_paths)
        });
    });

    group.bench_function("ratifier_n3_safety", |b| {
        b.iter(|| {
            let report = Explorer::new(Ratifier::binary(), vec![0, 1, 1])
                .verify_safety()
                .unwrap();
            black_box(report.complete_paths)
        });
    });

    group.bench_function("conciliator_n2_exact_delta", |b| {
        b.iter(|| {
            let value = Explorer::new(FirstMoverConciliator::impatient(), vec![0, 1])
                .worst_case_agreement()
                .unwrap();
            black_box(value.probability)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_checker);
criterion_main!(benches);
