//! Criterion bench backing E2/E6: wall-clock cost of one conciliator run in
//! the simulator, impatient vs fixed schedules, across n.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mc_core::FirstMoverConciliator;
use mc_sim::adversary::RandomScheduler;
use mc_sim::harness::{self, inputs};
use mc_sim::EngineConfig;
use std::hint::black_box;

fn bench_conciliators(c: &mut Criterion) {
    let mut group = c.benchmark_group("conciliator");
    group.sample_size(30);
    for n in [8usize, 32, 128] {
        let config = EngineConfig::default();
        let ins = inputs::alternating(n, 2);
        group.bench_with_input(BenchmarkId::new("impatient", n), &n, |b, _| {
            let spec = FirstMoverConciliator::impatient();
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                let out = harness::run_object(
                    &spec,
                    &ins,
                    &mut RandomScheduler::new(seed),
                    seed,
                    &config,
                )
                .unwrap();
                black_box(out.metrics.total_work())
            });
        });
        group.bench_with_input(BenchmarkId::new("fixed", n), &n, |b, _| {
            let spec = FirstMoverConciliator::fixed(1.0);
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                let out = harness::run_object(
                    &spec,
                    &ins,
                    &mut RandomScheduler::new(seed),
                    seed,
                    &config,
                )
                .unwrap();
                black_box(out.metrics.total_work())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_conciliators);
criterion_main!(benches);
