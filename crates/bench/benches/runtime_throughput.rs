//! Criterion bench backing E12: one complete consensus instance on real
//! threads (spawn + decide + join), across thread counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mc_runtime::Consensus;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::sync::Arc;

fn bench_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime");
    group.sample_size(30);
    for threads in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("binary_instance", threads),
            &threads,
            |b, &threads| {
                let mut instance = 0u64;
                b.iter(|| {
                    instance = instance.wrapping_add(1);
                    let consensus = Arc::new(Consensus::builder().n(threads).build());
                    let handles: Vec<_> = (0..threads as u64)
                        .map(|t| {
                            let c = Arc::clone(&consensus);
                            std::thread::spawn(move || {
                                let mut rng = SmallRng::seed_from_u64(instance * 100 + t);
                                c.decide(t % 2, &mut rng)
                            })
                        })
                        .collect();
                    let first = handles
                        .into_iter()
                        .map(|h| h.join().unwrap())
                        .next()
                        .unwrap();
                    black_box(first)
                });
            },
        );
    }

    // Decide latency without thread spawn overhead: a single thread racing
    // nobody (the solo fast path).
    group.bench_function("solo_decide", |b| {
        let mut rng = SmallRng::seed_from_u64(7);
        b.iter(|| {
            let consensus = Consensus::builder().n(1).build();
            black_box(consensus.decide(1, &mut rng))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
