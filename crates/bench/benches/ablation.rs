//! Criterion bench backing E10/E11: design-choice ablations — fast path
//! on/off for unanimous inputs, write-probability schedules, success
//! detection.

use criterion::{criterion_group, criterion_main, Criterion};
use mc_core::protocol::ConsensusBuilder;
use mc_core::{FirstMoverConciliator, WriteSchedule};
use mc_sim::adversary::RandomScheduler;
use mc_sim::harness::{self, inputs};
use mc_sim::EngineConfig;
use std::hint::black_box;

fn bench_fast_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("fast_path_unanimous");
    group.sample_size(40);
    let n = 32;
    for (name, fast) in [("on", true), ("off", false)] {
        let builder = ConsensusBuilder::binary();
        let spec = if fast {
            builder
        } else {
            builder.without_fast_path()
        }
        .build();
        group.bench_function(name, |b| {
            let mut seed = 0u64;
            let ins = inputs::unanimous(n, 1);
            b.iter(|| {
                seed = seed.wrapping_add(1);
                let out = harness::run_object(
                    &spec,
                    &ins,
                    &mut RandomScheduler::new(seed),
                    seed,
                    &EngineConfig::default(),
                )
                .unwrap();
                black_box(out.metrics.total_work())
            });
        });
    }
    group.finish();
}

fn bench_schedules(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule");
    group.sample_size(40);
    let n = 64;
    for (name, schedule) in [
        ("fixed_1n", WriteSchedule::fixed(1.0)),
        ("doubling", WriteSchedule::impatient()),
        ("quadrupling", WriteSchedule::geometric(1.0, 4.0)),
    ] {
        let spec = FirstMoverConciliator::with_schedule(schedule);
        group.bench_function(name, |b| {
            let mut seed = 0u64;
            let ins = inputs::alternating(n, 2);
            b.iter(|| {
                seed = seed.wrapping_add(1);
                let out = harness::run_object(
                    &spec,
                    &ins,
                    &mut RandomScheduler::new(seed),
                    seed,
                    &EngineConfig::default(),
                )
                .unwrap();
                black_box(out.metrics.total_work())
            });
        });
    }
    group.finish();
}

fn bench_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("detection");
    group.sample_size(40);
    let n = 64;
    let config = EngineConfig::default().with_detectable_prob_writes();
    for (name, spec) in [
        ("standard", FirstMoverConciliator::impatient()),
        (
            "detecting",
            FirstMoverConciliator::impatient().detecting_success(),
        ),
    ] {
        group.bench_function(name, |b| {
            let mut seed = 0u64;
            let ins = inputs::alternating(n, 2);
            b.iter(|| {
                seed = seed.wrapping_add(1);
                let out = harness::run_object(
                    &spec,
                    &ins,
                    &mut RandomScheduler::new(seed),
                    seed,
                    &config,
                )
                .unwrap();
                black_box(out.metrics.total_work())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fast_path, bench_schedules, bench_detection);
criterion_main!(benches);
