//! Write-probability schedules for first-mover conciliators.

use std::fmt;

use mc_model::Probability;

/// The probability with which a process's `k`-th probabilistic write (for
/// `k = 0, 1, 2, …`) takes effect, in an `n`-process system.
///
/// The paper's protocols differ only in this schedule:
///
/// * [`WriteSchedule::impatient`] — `2^k / n` (Procedure
///   ImpatientFirstMoverConciliator, Theorem 7). Processes become impatient
///   over time; individual work is `2⌈lg n⌉ + 4` worst case.
/// * [`WriteSchedule::fixed`] — constant `c / n` (the classic
///   Chor–Israeli–Li / Cheung approach, §5.2: "Previous protocols in this
///   model have used a constant Θ(1/n) probability"). Individual work
///   `Θ(n)`.
/// * [`WriteSchedule::geometric`] — `base · ratio^k / n`, generalizing both
///   (used by the ablation experiments).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteSchedule {
    base: f64,
    ratio: f64,
}

impl WriteSchedule {
    /// The paper's impatient doubling schedule `2^k / n`.
    pub fn impatient() -> WriteSchedule {
        WriteSchedule {
            base: 1.0,
            ratio: 2.0,
        }
    }

    /// The fixed schedule `c / n` (baseline; the classic choice is `c = 1`).
    ///
    /// # Panics
    ///
    /// Panics unless `c > 0` and finite.
    pub fn fixed(c: f64) -> WriteSchedule {
        assert!(c.is_finite() && c > 0.0, "c must be positive");
        WriteSchedule {
            base: c,
            ratio: 1.0,
        }
    }

    /// A general geometric schedule `base · ratio^k / n`.
    ///
    /// # Panics
    ///
    /// Panics unless `base > 0` and `ratio ≥ 1`, both finite.
    pub fn geometric(base: f64, ratio: f64) -> WriteSchedule {
        assert!(base.is_finite() && base > 0.0, "base must be positive");
        assert!(ratio.is_finite() && ratio >= 1.0, "ratio must be ≥ 1");
        WriteSchedule { base, ratio }
    }

    /// The probability of the `k`-th attempt among `n` processes, clamped
    /// into `[0, 1]`.
    pub fn probability(&self, k: u32, n: usize) -> Probability {
        let n = n.max(1) as f64;
        Probability::clamped(self.base * self.ratio.powi(k as i32) / n)
    }

    /// Number of attempts after which the probability saturates at 1 (and
    /// hence the last possible attempt), or `None` for schedules that never
    /// saturate.
    ///
    /// For the impatient schedule this is `⌈lg n⌉ + 1` attempts, which is
    /// what bounds individual work at `2⌈lg n⌉ + O(1)` operations.
    pub fn saturation_point(&self, n: usize) -> Option<u32> {
        if self.ratio <= 1.0 {
            return (self.base >= n.max(1) as f64).then_some(0);
        }
        let n = n.max(1) as f64;
        // Smallest k with base · ratio^k ≥ n.
        let k = ((n / self.base).ln() / self.ratio.ln()).ceil().max(0.0);
        Some(k as u32)
    }

    /// True for schedules whose probability grows without bound (these give
    /// the `O(log n)` individual-work guarantee).
    pub fn is_escalating(&self) -> bool {
        self.ratio > 1.0
    }
}

impl fmt::Display for WriteSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ratio == 1.0 {
            write!(f, "{}/n", self.base)
        } else if self.base == 1.0 {
            write!(f, "{}^k/n", self.ratio)
        } else {
            write!(f, "{}*{}^k/n", self.base, self.ratio)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn impatient_doubles() {
        let s = WriteSchedule::impatient();
        let n = 16;
        assert_eq!(s.probability(0, n).get(), 1.0 / 16.0);
        assert_eq!(s.probability(1, n).get(), 2.0 / 16.0);
        assert_eq!(s.probability(4, n).get(), 1.0);
        assert_eq!(s.probability(10, n).get(), 1.0);
    }

    #[test]
    fn impatient_saturates_at_lg_n() {
        let s = WriteSchedule::impatient();
        assert_eq!(s.saturation_point(16), Some(4));
        assert_eq!(s.saturation_point(17), Some(5));
        assert_eq!(s.saturation_point(1), Some(0));
    }

    #[test]
    fn fixed_never_escalates() {
        let s = WriteSchedule::fixed(1.0);
        assert!(!s.is_escalating());
        assert_eq!(s.probability(0, 8).get(), 0.125);
        assert_eq!(s.probability(100, 8).get(), 0.125);
        assert_eq!(s.saturation_point(8), None);
        assert_eq!(WriteSchedule::fixed(8.0).saturation_point(8), Some(0));
    }

    #[test]
    fn geometric_general_case() {
        let s = WriteSchedule::geometric(1.0, 4.0);
        assert_eq!(s.probability(2, 64).get(), 0.25);
        assert_eq!(s.saturation_point(64), Some(3));
    }

    #[test]
    fn single_process_always_writes() {
        assert!(WriteSchedule::impatient().probability(0, 1).is_certain());
    }

    #[test]
    fn display_forms() {
        assert_eq!(WriteSchedule::impatient().to_string(), "2^k/n");
        assert_eq!(WriteSchedule::fixed(1.0).to_string(), "1/n");
        assert_eq!(WriteSchedule::geometric(3.0, 2.0).to_string(), "3*2^k/n");
    }

    #[test]
    #[should_panic(expected = "ratio must be ≥ 1")]
    fn shrinking_ratio_rejected() {
        WriteSchedule::geometric(1.0, 0.5);
    }
}
