//! Conciliators: weak consensus objects that produce agreement with constant
//! probability (§3.1.1, §5).
//!
//! A conciliator satisfies validity, termination, coherence (vacuously — it
//! always returns decision bit 0), and *probabilistic agreement*: for some
//! fixed `δ > 0`, under any adversary the probability that all return values
//! are equal is at least `δ`.
//!
//! Two families are implemented:
//!
//! * [`FirstMoverConciliator`] — the probabilistic-write conciliators of
//!   §5.2, parameterized by a [`WriteSchedule`]. The paper's impatient
//!   doubling schedule gives Theorem 7's bounds; the fixed `Θ(1/n)` schedule
//!   is the Chor–Israeli–Li / Cheung-style baseline.
//! * [`CoinConciliator`] — Theorem 6's reduction from any weak shared coin,
//!   for models without probabilistic writes.

mod coin_conciliator;
mod dummy_write;
mod first_mover;
mod schedule;

pub use coin_conciliator::CoinConciliator;
pub use dummy_write::DummyWriteConciliator;
pub use first_mover::FirstMoverConciliator;
pub use schedule::WriteSchedule;
