//! First-mover conciliators in the probabilistic-write model (§5.2).

use std::sync::Arc;

use mc_model::{
    Action, Ctx, DecidingObject, Decision, InstantiateCtx, ObjectSpec, Op, ProcessId, RegisterId,
    Response, Session, StateSink, SymmetrySpec, Value,
};

use super::schedule::WriteSchedule;

/// The probabilistic-write conciliator of §5.2: a single multiwriter
/// register, written probabilistically by processes that have not yet
/// observed a value in it.
///
/// ```text
/// shared data: register r, initially ⊥
/// k ← 0
/// while r = ⊥ do
///     write v to r with probability schedule(k)      // 2^k/n impatient
///     k ← k + 1
/// end
/// return (0, r)
/// ```
///
/// With the impatient schedule this is *Procedure
/// ImpatientFirstMoverConciliator* and Theorem 7 applies: termination in
/// expected `6n` total work and at most `2⌈lg n⌉ + O(1)` individual work;
/// validity; coherence (vacuous); and agreement with probability at least
/// `(1 − e^{−1/4})(1/4) ≈ 0.0553` against any location-oblivious adversary.
///
/// With the fixed schedule `c/n` it is the classic Chor–Israeli–Li-style
/// conciliator: same agreement guarantee, but `Θ(n)` individual work.
///
/// The conciliator supports any number of distinct input values — nothing in
/// the race depends on `m`.
///
/// # Example
///
/// ```
/// use mc_core::FirstMoverConciliator;
/// use mc_sim::{adversary::RandomScheduler, harness, EngineConfig};
///
/// let outcome = harness::run_object(
///     &FirstMoverConciliator::impatient(),
///     &[3, 7, 7, 3],
///     &mut RandomScheduler::new(5),
///     11,
///     &EngineConfig::default(),
/// )
/// .unwrap();
/// // Validity: everyone returns some process's input.
/// assert!(outcome.values().iter().all(|v| [3, 7].contains(v)));
/// // Theorem 7's hard bound on individual work.
/// assert!(outcome.metrics.individual_work() <= 2 * 2 + 4);
/// ```
#[derive(Debug, Clone)]
pub struct FirstMoverConciliator {
    schedule: WriteSchedule,
    detect_success: bool,
}

impl FirstMoverConciliator {
    /// The paper's conciliator: impatient doubling schedule `2^k/n`
    /// (Theorem 7).
    pub fn impatient() -> FirstMoverConciliator {
        FirstMoverConciliator {
            schedule: WriteSchedule::impatient(),
            detect_success: false,
        }
    }

    /// The baseline conciliator with fixed write probability `c/n`
    /// (Chor–Israeli–Li, Cheung).
    pub fn fixed(c: f64) -> FirstMoverConciliator {
        FirstMoverConciliator {
            schedule: WriteSchedule::fixed(c),
            detect_success: false,
        }
    }

    /// A conciliator with an arbitrary schedule (ablation experiments).
    pub fn with_schedule(schedule: WriteSchedule) -> FirstMoverConciliator {
        FirstMoverConciliator {
            schedule,
            detect_success: false,
        }
    }

    /// Enables the footnote-2 optimization: if the engine lets processes
    /// detect a successful probabilistic write, return immediately after
    /// one, saving 2 operations of individual work.
    ///
    /// Harmless when the engine does not expose detection — the session
    /// simply follows the standard path.
    pub fn detecting_success(mut self) -> FirstMoverConciliator {
        self.detect_success = true;
        self
    }

    /// The schedule in use.
    pub fn schedule(&self) -> WriteSchedule {
        self.schedule
    }

    /// Worst-case individual work for `n` processes, or `None` for
    /// non-escalating schedules (whose worst case is unbounded, though
    /// expectation is finite).
    ///
    /// For the impatient schedule this is the paper's `2⌈lg n⌉ + 4`: one
    /// read + one write per loop iteration, with at most
    /// `saturation_point + 1` probabilistic writes followed by a final read.
    pub fn individual_work_bound(&self, n: usize) -> Option<u64> {
        self.schedule
            .saturation_point(n)
            .map(|k| 2 * (u64::from(k) + 1) + 2)
    }
}

struct FirstMoverObject {
    reg: RegisterId,
    n: usize,
    schedule: WriteSchedule,
    detect_success: bool,
}

impl DecidingObject for FirstMoverObject {
    fn session(&self, _pid: ProcessId) -> Box<dyn Session + Send> {
        Box::new(FirstMoverSession {
            reg: self.reg,
            n: self.n,
            schedule: self.schedule,
            detect_success: self.detect_success,
            input: 0,
            k: 0,
            state: State::AwaitingRead,
        })
    }

    fn symmetry(&self) -> SymmetrySpec {
        // Sessions ignore the pid entirely and treat values opaquely: the
        // single shared register holds whatever value wins the race.
        SymmetrySpec {
            pid_oblivious: true,
            value_symmetric: true,
            value_registers: vec![(self.reg, 1)],
            ..SymmetrySpec::default()
        }
    }
}

enum State {
    AwaitingRead,
    AwaitingWrite,
}

struct FirstMoverSession {
    reg: RegisterId,
    n: usize,
    schedule: WriteSchedule,
    detect_success: bool,
    input: Value,
    k: u32,
    state: State,
}

impl Session for FirstMoverSession {
    fn begin(&mut self, input: Value, _ctx: &mut Ctx<'_>) -> Action {
        self.input = input;
        self.state = State::AwaitingRead;
        Action::Invoke(Op::Read(self.reg))
    }

    fn poll(&mut self, response: Response, _ctx: &mut Ctx<'_>) -> Action {
        match self.state {
            State::AwaitingRead => {
                match response.expect_read() {
                    // Someone has written: adopt the register's value.
                    Some(v) => Action::Halt(Decision::continue_with(v)),
                    None => {
                        let prob = self.schedule.probability(self.k, self.n);
                        self.k += 1;
                        self.state = State::AwaitingWrite;
                        Action::Invoke(Op::ProbWrite {
                            reg: self.reg,
                            value: self.input,
                            prob,
                        })
                    }
                }
            }
            State::AwaitingWrite => {
                if self.detect_success {
                    if let Response::ProbWrite {
                        performed: Some(true),
                    } = response
                    {
                        // Footnote 2: our own write succeeded; the next read
                        // could only observe a value, so skip it. Returning
                        // our own input preserves validity and coherence.
                        return Action::Halt(Decision::continue_with(self.input));
                    }
                }
                self.state = State::AwaitingRead;
                Action::Invoke(Op::Read(self.reg))
            }
        }
    }

    fn snapshot(&self, sink: &mut StateSink) {
        sink.push_raw(match self.state {
            State::AwaitingRead => 0,
            State::AwaitingWrite => 1,
        });
        sink.push_raw(u64::from(self.k));
        sink.push_value(self.input);
    }
}

impl ObjectSpec for FirstMoverConciliator {
    fn instantiate(&self, ctx: &mut InstantiateCtx<'_>) -> Arc<dyn DecidingObject> {
        Arc::new(FirstMoverObject {
            reg: ctx.alloc.alloc_block(1),
            n: ctx.n,
            schedule: self.schedule,
            detect_success: self.detect_success,
        })
    }

    fn name(&self) -> String {
        format!("first-mover({})", self.schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_model::properties;
    use mc_sim::adversary::{ImpatienceExploiter, RandomScheduler, RoundRobin};
    use mc_sim::harness::{self, inputs};
    use mc_sim::EngineConfig;

    /// Theorem 7's agreement probability lower bound.
    const DELTA: f64 = 0.0552;

    #[test]
    fn spec_reports_paper_bounds() {
        let c = FirstMoverConciliator::impatient();
        // 2⌈lg n⌉ + 4 for n a power of two.
        assert_eq!(c.individual_work_bound(16), Some(2 * 4 + 4));
        assert_eq!(c.individual_work_bound(1), Some(4));
        assert_eq!(
            FirstMoverConciliator::fixed(1.0).individual_work_bound(8),
            None
        );
        assert_eq!(c.name(), "first-mover(2^k/n)");
    }

    #[test]
    fn validity_and_coherence_hold() {
        for seed in 0..50 {
            let ins = inputs::alternating(6, 3);
            let out = harness::run_object(
                &FirstMoverConciliator::impatient(),
                &ins,
                &mut RandomScheduler::new(seed),
                seed,
                &EngineConfig::default(),
            )
            .unwrap();
            properties::check_weak_consensus(&ins, &out.outputs).unwrap();
            // Conciliators never decide.
            assert!(out.outputs.iter().all(|d| !d.is_decided()));
        }
    }

    #[test]
    fn unanimous_inputs_always_agree() {
        for seed in 0..20 {
            let ins = inputs::unanimous(8, 4);
            let out = harness::run_object(
                &FirstMoverConciliator::impatient(),
                &ins,
                &mut RoundRobin::new(),
                seed,
                &EngineConfig::default(),
            )
            .unwrap();
            assert!(out.agreed());
            assert_eq!(out.values()[0], 4);
        }
    }

    #[test]
    fn individual_work_respects_theorem_7() {
        let n = 32;
        let bound = FirstMoverConciliator::impatient()
            .individual_work_bound(n)
            .unwrap();
        for seed in 0..100 {
            let out = harness::run_object(
                &FirstMoverConciliator::impatient(),
                &inputs::alternating(n, 2),
                &mut RandomScheduler::new(seed),
                seed,
                &EngineConfig::default(),
            )
            .unwrap();
            assert!(
                out.metrics.individual_work() <= bound,
                "seed {seed}: {} > {bound}",
                out.metrics.individual_work()
            );
        }
    }

    #[test]
    fn agreement_probability_exceeds_delta_under_attack() {
        let spec = FirstMoverConciliator::impatient();
        let stats = harness::run_trials(
            &spec,
            600,
            2024,
            &EngineConfig::default(),
            |_| inputs::alternating(16, 2),
            |_| Box::new(ImpatienceExploiter::new()),
        )
        .unwrap();
        assert!(
            stats.agreement_rate() >= DELTA,
            "agreement rate {} below Theorem 7's δ",
            stats.agreement_rate()
        );
    }

    #[test]
    fn total_work_is_linear_in_expectation() {
        let n = 32;
        let stats = harness::run_trials(
            &FirstMoverConciliator::impatient(),
            200,
            7,
            &EngineConfig::default(),
            |_| inputs::alternating(n, 2),
            |seed| Box::new(RandomScheduler::new(seed)),
        )
        .unwrap();
        // Theorem 7: expected total work at most 6n.
        assert!(
            stats.mean_total_work() <= 6.0 * n as f64,
            "mean total work {} exceeds 6n",
            stats.mean_total_work()
        );
    }

    #[test]
    fn detection_variant_saves_work() {
        let n = 16;
        let config = EngineConfig::default().with_detectable_prob_writes();
        let base = harness::run_trials(
            &FirstMoverConciliator::impatient(),
            300,
            5,
            &config,
            |_| inputs::unanimous(n, 1),
            |seed| Box::new(RandomScheduler::new(seed)),
        )
        .unwrap();
        let detecting = harness::run_trials(
            &FirstMoverConciliator::impatient().detecting_success(),
            300,
            5,
            &config,
            |_| inputs::unanimous(n, 1),
            |seed| Box::new(RandomScheduler::new(seed)),
        )
        .unwrap();
        assert!(
            detecting.mean_total_work() < base.mean_total_work(),
            "detection should reduce work: {} vs {}",
            detecting.mean_total_work(),
            base.mean_total_work()
        );
        // And it must not cost correctness.
        properties::check_weak_consensus(&inputs::unanimous(n, 1), &[]).unwrap();
    }

    #[test]
    fn fixed_schedule_has_linear_individual_work() {
        // The baseline's Θ(n) individual work shows when a process runs
        // alone (a priority scheduler lets the leader race solo): it needs
        // expected n probabilistic writes before one lands. The impatient
        // schedule saturates after ⌈lg n⌉ + 1 attempts.
        let n = 64;
        let run = |spec: &FirstMoverConciliator| {
            harness::run_trials(
                spec,
                60,
                3,
                &EngineConfig::default(),
                |_| inputs::alternating(n, 2),
                |_| Box::new(mc_sim::sched::PriorityScheduler::descending(n)),
            )
            .unwrap()
            .mean_individual_work()
        };
        let fixed = run(&FirstMoverConciliator::fixed(1.0));
        let impatient = run(&FirstMoverConciliator::impatient());
        assert!(
            fixed > 3.0 * impatient,
            "fixed {fixed} should dwarf impatient {impatient}"
        );
    }

    #[test]
    fn uses_exactly_one_register() {
        let out = harness::run_object(
            &FirstMoverConciliator::impatient(),
            &inputs::alternating(8, 2),
            &mut RoundRobin::new(),
            0,
            &EngineConfig::default(),
        )
        .unwrap();
        assert_eq!(out.metrics.registers_allocated, 1);
    }
}
