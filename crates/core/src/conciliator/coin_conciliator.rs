//! Theorem 6: a binary conciliator from any weak shared coin.

use std::sync::Arc;

use mc_model::{
    Action, Ctx, DecidingObject, Decision, InstantiateCtx, ObjectSpec, Op, ProcessId, RegisterId,
    Response, Session, StateSink, Value,
};

/// Procedure CoinConciliator (§5.1):
///
/// ```text
/// shared data: binary registers r₀, r₁ initially 0; weak shared coin SharedCoin
/// r_v ← 1
/// if r_v̄ = 1 then return (0, SharedCoin()) else return (0, v)
/// ```
///
/// A process announces its own value, then checks whether the *opposite*
/// value was announced; if not, it keeps its value, otherwise it defers to
/// the shared coin. Theorem 6: given a coin with agreement parameter `δ`,
/// this satisfies termination, validity, coherence, and probabilistic
/// agreement with probability at least `δ`.
///
/// Adds 2 registers and 2 operations on top of the coin's cost. Binary
/// values only — extending a shared coin to more values is non-obvious
/// (§5.1), which is exactly why the probabilistic-write conciliator matters
/// for multivalued consensus.
#[derive(Clone)]
pub struct CoinConciliator {
    coin: Arc<dyn ObjectSpec>,
}

impl CoinConciliator {
    /// Builds the conciliator over the given weak shared coin.
    pub fn new(coin: Arc<dyn ObjectSpec>) -> CoinConciliator {
        CoinConciliator { coin }
    }
}

impl std::fmt::Debug for CoinConciliator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoinConciliator")
            .field("coin", &self.coin.name())
            .finish()
    }
}

struct CoinConciliatorObject {
    /// `announce.offset(v)` is the binary register `r_v`.
    announce: RegisterId,
    coin: Arc<dyn DecidingObject>,
}

impl DecidingObject for CoinConciliatorObject {
    fn session(&self, pid: ProcessId) -> Box<dyn Session + Send> {
        Box::new(CoinConciliatorSession {
            announce: self.announce,
            coin: Arc::clone(&self.coin),
            pid,
            input: 0,
            state: State::Announcing,
            coin_session: None,
        })
    }
}

enum State {
    Announcing,
    CheckingOther,
    RunningCoin,
}

struct CoinConciliatorSession {
    announce: RegisterId,
    coin: Arc<dyn DecidingObject>,
    pid: ProcessId,
    input: Value,
    state: State,
    coin_session: Option<Box<dyn Session + Send>>,
}

impl CoinConciliatorSession {
    fn map_coin(action: Action) -> Action {
        match action {
            Action::Halt(d) => Action::Halt(Decision::continue_with(d.value())),
            invoke => invoke,
        }
    }
}

impl Session for CoinConciliatorSession {
    fn begin(&mut self, input: Value, _ctx: &mut Ctx<'_>) -> Action {
        assert!(input <= 1, "CoinConciliator is binary; got input {input}");
        self.input = input;
        self.state = State::Announcing;
        Action::Invoke(Op::Write {
            reg: self.announce.offset(input),
            value: 1,
        })
    }

    fn poll(&mut self, response: Response, ctx: &mut Ctx<'_>) -> Action {
        match self.state {
            State::Announcing => {
                debug_assert!(matches!(response, Response::Write));
                self.state = State::CheckingOther;
                Action::Invoke(Op::Read(self.announce.offset(1 - self.input)))
            }
            State::CheckingOther => {
                if response.expect_read().is_some() {
                    // The opposite value is in play: defer to the coin.
                    self.state = State::RunningCoin;
                    let mut session = self.coin.session(self.pid);
                    let action = Self::map_coin(session.begin(0, ctx));
                    self.coin_session = Some(session);
                    action
                } else {
                    Action::Halt(Decision::continue_with(self.input))
                }
            }
            State::RunningCoin => {
                let session = self
                    .coin_session
                    .as_mut()
                    .expect("coin session active in RunningCoin state");
                Self::map_coin(session.poll(response, ctx))
            }
        }
    }

    fn snapshot(&self, sink: &mut StateSink) {
        sink.push_raw(match self.state {
            State::Announcing => 0,
            State::CheckingOther => 1,
            State::RunningCoin => 2,
        });
        sink.push_value(self.input);
        match &self.coin_session {
            Some(inner) => {
                sink.push_raw(1);
                inner.snapshot(sink);
            }
            None => sink.push_raw(0),
        }
    }
}

impl ObjectSpec for CoinConciliator {
    fn instantiate(&self, ctx: &mut InstantiateCtx<'_>) -> Arc<dyn DecidingObject> {
        let announce = ctx.alloc.alloc_block(2);
        Arc::new(CoinConciliatorObject {
            announce,
            coin: self.coin.instantiate(ctx),
        })
    }

    fn name(&self) -> String {
        format!("coin-conciliator({})", self.coin.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coin::VotingSharedCoin;
    use mc_model::properties;
    use mc_sim::adversary::{RandomScheduler, SplitKeeper, WriteBlocker};
    use mc_sim::harness::{self, inputs};
    use mc_sim::EngineConfig;

    fn spec() -> CoinConciliator {
        CoinConciliator::new(Arc::new(VotingSharedCoin::new()))
    }

    #[test]
    fn unanimous_inputs_skip_the_coin_entirely() {
        for v in [0u64, 1] {
            let out = harness::run_object(
                &spec(),
                &inputs::unanimous(6, v),
                &mut RandomScheduler::new(1),
                v,
                &EngineConfig::default(),
            )
            .unwrap();
            assert!(out.agreed());
            assert_eq!(out.values()[0], v);
            // 2 ops per process: one announce, one check.
            assert_eq!(out.metrics.total_work(), 12);
        }
    }

    #[test]
    fn validity_and_coherence_under_stress() {
        for seed in 0..25 {
            let ins = inputs::alternating(5, 2);
            let out = harness::run_object(
                &spec(),
                &ins,
                &mut WriteBlocker::new(),
                seed,
                &EngineConfig::default(),
            )
            .unwrap();
            properties::check_weak_consensus(&ins, &out.outputs).unwrap();
        }
    }

    #[test]
    fn agreement_with_constant_probability_under_adaptive_attack() {
        let stats = harness::run_trials(
            &spec(),
            100,
            41,
            &EngineConfig::default(),
            |_| inputs::alternating(4, 2),
            |seed| Box::new(SplitKeeper::new(seed)),
        )
        .unwrap();
        assert!(
            stats.agreement_rate() > 0.10,
            "rate {}",
            stats.agreement_rate()
        );
    }

    #[test]
    #[should_panic(expected = "binary")]
    fn non_binary_input_rejected() {
        let _ = harness::run_object(
            &spec(),
            &[0, 2],
            &mut RandomScheduler::new(0),
            0,
            &EngineConfig::default(),
        );
    }

    #[test]
    fn name_mentions_coin() {
        assert_eq!(spec().name(), "coin-conciliator(voting-coin(4n^2))");
    }
}
