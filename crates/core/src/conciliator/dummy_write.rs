//! The dummy-register reduction of §2.1: probabilistic writes implemented
//! with plain writes under a location-oblivious adversary.

use std::sync::Arc;

use mc_model::{
    Action, Ctx, DecidingObject, Decision, InstantiateCtx, ObjectSpec, Op, ProcessId, RegisterId,
    Response, Session, Value,
};
use rand::RngExt;

use super::schedule::WriteSchedule;

/// The first-mover conciliator with probabilistic writes *implemented* via
/// the paper's reduction (§2.1): instead of the engine-level
/// [`Op::ProbWrite`], the process flips a local coin and then performs an
/// ordinary write — to the real register on success, to a private dummy
/// register otherwise.
///
/// Under a location-oblivious adversary the two writes are
/// indistinguishable (same kind, same visible value, hidden location), so
/// the adversary cannot condition its schedule on the coin — which is
/// exactly the guarantee [`Op::ProbWrite`] provides natively. Against
/// *stronger* adversaries the reduction leaks: an adaptive adversary sees
/// the target location and can delay exactly the real writes. This object
/// exists to demonstrate both directions experimentally.
///
/// Work per process is identical to
/// [`FirstMoverConciliator`](super::FirstMoverConciliator) (dummy writes
/// cost one operation, like failed probabilistic writes).
#[derive(Debug, Clone)]
pub struct DummyWriteConciliator {
    schedule: WriteSchedule,
}

impl DummyWriteConciliator {
    /// The reduction applied to the paper's impatient schedule.
    pub fn impatient() -> DummyWriteConciliator {
        DummyWriteConciliator {
            schedule: WriteSchedule::impatient(),
        }
    }

    /// The reduction applied to an arbitrary schedule.
    pub fn with_schedule(schedule: WriteSchedule) -> DummyWriteConciliator {
        DummyWriteConciliator { schedule }
    }
}

struct DummyWriteObject {
    reg: RegisterId,
    /// One private dummy register per process.
    dummies: RegisterId,
    n: usize,
    schedule: WriteSchedule,
}

impl DecidingObject for DummyWriteObject {
    fn session(&self, pid: ProcessId) -> Box<dyn Session + Send> {
        Box::new(DummyWriteSession {
            reg: self.reg,
            dummy: self.dummies.offset(pid.index() as u64),
            n: self.n,
            schedule: self.schedule,
            input: 0,
            k: 0,
            awaiting_write: false,
        })
    }
}

struct DummyWriteSession {
    reg: RegisterId,
    dummy: RegisterId,
    n: usize,
    schedule: WriteSchedule,
    input: Value,
    k: u32,
    awaiting_write: bool,
}

impl Session for DummyWriteSession {
    fn begin(&mut self, input: Value, _ctx: &mut Ctx<'_>) -> Action {
        self.input = input;
        Action::Invoke(Op::Read(self.reg))
    }

    fn poll(&mut self, response: Response, ctx: &mut Ctx<'_>) -> Action {
        if self.awaiting_write {
            debug_assert!(matches!(response, Response::Write));
            self.awaiting_write = false;
            return Action::Invoke(Op::Read(self.reg));
        }
        match response.expect_read() {
            Some(v) => Action::Halt(Decision::continue_with(v)),
            None => {
                let prob = self.schedule.probability(self.k, self.n);
                self.k += 1;
                self.awaiting_write = true;
                // The reduction: resolve the coin locally, then emit an
                // ordinary write whose *location* encodes the outcome.
                let target = if ctx.rng.random_bool(prob.get()) {
                    self.reg
                } else {
                    self.dummy
                };
                Action::Invoke(Op::Write {
                    reg: target,
                    value: self.input,
                })
            }
        }
    }
}

impl ObjectSpec for DummyWriteConciliator {
    fn instantiate(&self, ctx: &mut InstantiateCtx<'_>) -> Arc<dyn DecidingObject> {
        Arc::new(DummyWriteObject {
            reg: ctx.alloc.alloc_block(1),
            dummies: ctx.alloc.alloc_block(ctx.n as u64),
            n: ctx.n,
            schedule: self.schedule,
        })
    }

    fn name(&self) -> String {
        format!("first-mover-dummy({})", self.schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conciliator::FirstMoverConciliator;
    use mc_model::properties;
    use mc_sim::adversary::{Adversary, Capability, RandomScheduler, View};
    use mc_sim::harness::{self, inputs};
    use mc_sim::EngineConfig;

    #[test]
    fn reduction_preserves_weak_consensus() {
        for seed in 0..40 {
            let ins = inputs::alternating(8, 3);
            let out = harness::run_object(
                &DummyWriteConciliator::impatient(),
                &ins,
                &mut RandomScheduler::new(seed),
                seed,
                &EngineConfig::default(),
            )
            .unwrap();
            properties::check_weak_consensus(&ins, &out.outputs).unwrap();
        }
    }

    #[test]
    fn reduction_matches_native_probwrite_costs() {
        let n = 32;
        let run = |spec: &dyn mc_model::ObjectSpec| {
            harness::run_trials(
                spec,
                400,
                9,
                &EngineConfig::default(),
                |_| inputs::alternating(n, 2),
                |s| Box::new(RandomScheduler::new(s)),
            )
            .unwrap()
        };
        let native = run(&FirstMoverConciliator::impatient());
        let reduced = run(&DummyWriteConciliator::impatient());
        // Same work distribution to within sampling noise…
        let ratio = reduced.mean_total_work() / native.mean_total_work();
        assert!((0.8..1.25).contains(&ratio), "work ratio {ratio}");
        // …and comparable agreement under an oblivious scheduler.
        assert!(
            (reduced.agreement_rate() - native.agreement_rate()).abs() < 0.15,
            "agreement: native {} vs reduced {}",
            native.agreement_rate(),
            reduced.agreement_rate()
        );
    }

    /// An adaptive adversary that exploits the reduction's leak: it sees
    /// write *locations*, so it stalls every pending write to the real
    /// register while any other operation is available.
    struct RealWriteStaller {
        target: u64,
        cursor: usize,
    }

    impl Adversary for RealWriteStaller {
        fn capability(&self) -> Capability {
            Capability::Adaptive
        }
        fn choose(&mut self, view: &View<'_>) -> mc_model::ProcessId {
            let harmless = view.pending.iter().find(|p| {
                p.kind != Some(mc_model::OpKind::Write)
                    || p.reg != Some(mc_model::RegisterId(self.target))
            });
            let choice = match harmless {
                Some(p) => p.pid,
                None => view.pending[self.cursor % view.pending.len()].pid,
            };
            self.cursor += 1;
            choice
        }
        fn name(&self) -> String {
            "real-write-staller".into()
        }
    }

    #[test]
    fn adaptive_adversary_exploits_the_leaked_location() {
        // Against the adaptive staller, the dummy-write reduction's
        // agreement degrades relative to the oblivious case: the adversary
        // lines up several pending real writes and releases them together.
        // (It cannot drive agreement to 0 — with all writes pending it must
        // release one — but the gap to the native ProbWrite object, whose
        // coins it cannot see, demonstrates the §2.1 caveat.)
        let n = 8;
        let run = |spec: &dyn mc_model::ObjectSpec| {
            harness::run_trials(
                spec,
                500,
                17,
                &EngineConfig::default(),
                |_| inputs::alternating(n, 2),
                |_| {
                    Box::new(RealWriteStaller {
                        target: 0,
                        cursor: 0,
                    })
                },
            )
            .unwrap()
            .agreement_rate()
        };
        let reduced = run(&DummyWriteConciliator::impatient());
        let native = run(&FirstMoverConciliator::impatient());
        assert!(
            reduced < native,
            "staller should hurt the reduction more: reduced {reduced} vs native {native}"
        );
    }
}
