//! Composition of deciding objects (§3.2).
//!
//! The composition `(X; Y)` runs `X` and, *only if* `X` returns decision bit
//! 0, feeds `X`'s value into `Y` — an exception-like mechanism where a
//! decision terminates the whole composite immediately:
//!
//! ```text
//! (d, v) ← op_X(x)
//! if d = 1 then return (1, v) else return op_Y(v)
//! ```
//!
//! Composition is associative, so arbitrary finite sequences
//! `(X₁; X₂; …; X_k)` ([`Chain`]) and infinite sequences ([`LazyChain`]) are
//! well-defined. The paper's Lemmas 1–3 and Corollary 4 show composition
//! preserves validity, termination, coherence — and hence the property of
//! being a weak consensus object — which is what makes the conciliator/
//! ratifier alternation correct.
//!
//! # Recyclability
//!
//! Model-side objects are one-shot *per instantiation*: every property
//! above is stated over the executions of a single instance, so "reuse"
//! in the model is simply instantiating a fresh [`ObjectSpec`] session.
//! The thread runtime's recycled objects (`mc-runtime`'s
//! generation-tagged `reset`) are sound for exactly this reason: after a
//! reset, every register of the instance reads as initial, making the
//! recycled instance extensionally equal to a fresh instantiation of its
//! spec — which is what the lab's recycled-vs-fresh conformance check
//! (`mc-lab::check_recycled_conformance`) verifies against this model,
//! execution for execution. Nothing in the composition lemmas needs a
//! cross-instance argument, so no new proof obligation arises here.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use mc_model::{
    Action, Ctx, DecidingObject, InstantiateCtx, ObjectSpec, ProcessId, Response, Session,
    StateSink, SymmetrySpec, Value,
};

/// A finite composition `(X₁; X₂; …; X_k)` with every stage instantiated up
/// front.
///
/// Use [`LazyChain`] for unbounded sequences or when most stages are
/// usually skipped.
#[derive(Clone)]
pub struct Chain {
    stages: Vec<Arc<dyn ObjectSpec>>,
}

impl Chain {
    /// Composes the given stages in order.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty.
    pub fn new(stages: Vec<Arc<dyn ObjectSpec>>) -> Chain {
        assert!(!stages.is_empty(), "a chain needs at least one stage");
        Chain { stages }
    }

    /// The binary composition `(X; Y)` of §3.2.
    pub fn pair(x: Arc<dyn ObjectSpec>, y: Arc<dyn ObjectSpec>) -> Chain {
        Chain::new(vec![x, y])
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the chain has no stages (never true — construction forbids
    /// it — but provided for the usual `len`/`is_empty` pairing).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }
}

impl std::fmt::Debug for Chain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Chain[{}]", self.name())
    }
}

struct ChainObject {
    stages: Vec<Arc<dyn DecidingObject>>,
}

impl DecidingObject for ChainObject {
    fn session(&self, pid: ProcessId) -> Box<dyn Session + Send> {
        Box::new(StagedSession {
            source: StageSource::Eager(self.stages.clone()),
            pid,
            cur: 0,
            inner: None,
            probe: None,
        })
    }

    fn symmetry(&self) -> SymmetrySpec {
        // A composite has exactly the symmetries every stage has; register
        // declarations accumulate since each stage owns disjoint registers.
        let mut spec = SymmetrySpec::fully_symmetric();
        for stage in &self.stages {
            spec.merge(&stage.symmetry());
        }
        spec
    }
}

impl ObjectSpec for Chain {
    fn instantiate(&self, ctx: &mut InstantiateCtx<'_>) -> Arc<dyn DecidingObject> {
        Arc::new(ChainObject {
            stages: self.stages.iter().map(|s| s.instantiate(ctx)).collect(),
        })
    }

    fn name(&self) -> String {
        let parts: Vec<String> = self.stages.iter().map(|s| s.name()).collect();
        format!("({})", parts.join("; "))
    }
}

/// Observation hooks for chain executions: how deep did the chain go, and
/// where did each process halt. Shared across the processes of a run (and
/// across runs, unless [`reset`](ChainProbe::reset)).
#[derive(Debug, Default)]
pub struct ChainProbe {
    max_stage: AtomicUsize,
    halts: Mutex<Vec<(usize, bool)>>,
}

impl ChainProbe {
    /// Creates a probe.
    pub fn new() -> Arc<ChainProbe> {
        Arc::new(ChainProbe::default())
    }

    fn record_stage(&self, stage: usize) {
        self.max_stage.fetch_max(stage, Ordering::Relaxed);
    }

    fn record_halt(&self, stage: usize, decided: bool) {
        self.halts
            .lock()
            .expect("probe lock")
            .push((stage, decided));
    }

    /// The deepest stage index any process entered.
    pub fn max_stage(&self) -> usize {
        self.max_stage.load(Ordering::Relaxed)
    }

    /// For each halted session: (stage index at halt, decided?).
    pub fn halts(&self) -> Vec<(usize, bool)> {
        self.halts.lock().expect("probe lock").clone()
    }

    /// Clears recorded data (for reuse across runs).
    pub fn reset(&self) {
        self.max_stage.store(0, Ordering::Relaxed);
        self.halts.lock().expect("probe lock").clear();
    }
}

/// An unbounded composition `(X₁; X₂; …)` whose stages are produced by a
/// generator function and instantiated lazily, on first use by any process.
///
/// This realizes the paper's unbounded constructions (§4.1.1, §4.2) in
/// bounded *actual* space: registers are allocated only for stages some
/// process reaches, and the expected number of stages used is constant when
/// conciliators have constant agreement probability.
#[derive(Clone)]
pub struct LazyChain {
    generator: Arc<dyn Fn(usize) -> Arc<dyn ObjectSpec> + Send + Sync>,
    name: String,
    probe: Option<Arc<ChainProbe>>,
}

impl LazyChain {
    /// Creates a lazy chain from a stage generator: `generator(i)` supplies
    /// the spec for stage `i`.
    pub fn new(
        name: impl Into<String>,
        generator: impl Fn(usize) -> Arc<dyn ObjectSpec> + Send + Sync + 'static,
    ) -> LazyChain {
        LazyChain {
            generator: Arc::new(generator),
            name: name.into(),
            probe: None,
        }
    }

    /// Attaches a probe recording stage depth and halt sites.
    pub fn with_probe(mut self, probe: Arc<ChainProbe>) -> LazyChain {
        self.probe = Some(probe);
        self
    }
}

impl std::fmt::Debug for LazyChain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LazyChain[{}]", self.name)
    }
}

struct LazyChainObject {
    generator: Arc<dyn Fn(usize) -> Arc<dyn ObjectSpec> + Send + Sync>,
    n: usize,
    cache: Mutex<Vec<Arc<dyn DecidingObject>>>,
    probe: Option<Arc<ChainProbe>>,
    /// Highest valid stage index, or `None` for an unbounded chain.
    /// [`BoundedChain`] sets this to its fallback's index.
    limit: Option<usize>,
}

impl LazyChainObject {
    /// Returns stage `i`, instantiating it (and any gaps) on first demand.
    fn stage(&self, i: usize, ctx: &mut Ctx<'_>) -> Arc<dyn DecidingObject> {
        let mut cache = self.cache.lock().expect("chain cache lock");
        while cache.len() <= i {
            let spec = (self.generator)(cache.len());
            let obj = spec.instantiate(&mut InstantiateCtx::new(self.n, ctx.alloc));
            cache.push(obj);
        }
        Arc::clone(&cache[i])
    }
}

impl DecidingObject for LazyChainObject {
    fn session(&self, _pid: ProcessId) -> Box<dyn Session + Send> {
        unreachable!("LazyChain sessions are created by the spec wrapper")
    }
}

struct LazyChainHandle {
    object: Arc<LazyChainObject>,
}

impl DecidingObject for LazyChainHandle {
    fn session(&self, pid: ProcessId) -> Box<dyn Session + Send> {
        Box::new(StagedSession {
            source: StageSource::Lazy(Arc::clone(&self.object)),
            pid,
            cur: 0,
            inner: None,
            probe: self.object.probe.clone(),
        })
    }

    fn symmetry(&self) -> SymmetrySpec {
        // Only instantiated stages can have contributed to the current
        // configuration. Gap-filling instantiation makes the watermark a
        // function of the configuration itself (it equals the deepest
        // stage any process has entered), so equal configurations always
        // carry equal certificates.
        let cache = self.object.cache.lock().expect("chain cache lock");
        let mut spec = SymmetrySpec::fully_symmetric();
        for stage in cache.iter() {
            spec.merge(&stage.symmetry());
        }
        spec
    }
}

impl ObjectSpec for LazyChain {
    fn instantiate(&self, ctx: &mut InstantiateCtx<'_>) -> Arc<dyn DecidingObject> {
        Arc::new(LazyChainHandle {
            object: Arc::new(LazyChainObject {
                generator: Arc::clone(&self.generator),
                n: ctx.n,
                cache: Mutex::new(Vec::new()),
                probe: self.probe.clone(),
                limit: None,
            }),
        })
    }

    fn name(&self) -> String {
        self.name.clone()
    }
}

/// The bounded composition of §4.1.2 / Theorem 5:
/// `(X₁; X₂; …; X_f; K)` — a truncated generator chain with a designated
/// final fallback stage `K`.
///
/// Like [`LazyChain`], stages are produced by a generator and instantiated
/// on first use; unlike it, the chain is finite: after `rounds` generated
/// stages comes the fallback spec, and the chain ends there. A process
/// that traverses every generated stage without deciding enters `K`
/// (observable as [`ChainProbe::max_stage`] reaching
/// [`fallback_index`](BoundedChain::fallback_index)); the composite's
/// output is then whatever `K` halts with — composition (Lemmas 1–3)
/// preserves validity and coherence regardless, so the truncated chain is
/// still a weak consensus object, and it is a full consensus object
/// exactly when `K` is one.
#[derive(Clone)]
pub struct BoundedChain {
    generator: Arc<dyn Fn(usize) -> Arc<dyn ObjectSpec> + Send + Sync>,
    rounds: usize,
    fallback: Arc<dyn ObjectSpec>,
    name: String,
    probe: Option<Arc<ChainProbe>>,
}

impl BoundedChain {
    /// Creates a bounded chain: `generator(i)` supplies stage `i` for
    /// `i < rounds`, then `fallback` is the final stage. `rounds` may be 0,
    /// leaving just the fallback.
    pub fn new(
        name: impl Into<String>,
        generator: impl Fn(usize) -> Arc<dyn ObjectSpec> + Send + Sync + 'static,
        rounds: usize,
        fallback: Arc<dyn ObjectSpec>,
    ) -> BoundedChain {
        BoundedChain {
            generator: Arc::new(generator),
            rounds,
            fallback,
            name: name.into(),
            probe: None,
        }
    }

    /// Attaches a probe recording stage depth and halt sites. A process
    /// took the fallback iff it entered stage [`fallback_index`](Self::fallback_index).
    pub fn with_probe(mut self, probe: Arc<ChainProbe>) -> BoundedChain {
        self.probe = Some(probe);
        self
    }

    /// The stage index of the fallback `K` (= the number of generated
    /// stages before it).
    pub fn fallback_index(&self) -> usize {
        self.rounds
    }
}

impl std::fmt::Debug for BoundedChain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BoundedChain[{}]", self.name)
    }
}

impl ObjectSpec for BoundedChain {
    fn instantiate(&self, ctx: &mut InstantiateCtx<'_>) -> Arc<dyn DecidingObject> {
        let rounds = self.rounds;
        let generator = Arc::clone(&self.generator);
        let fallback = Arc::clone(&self.fallback);
        Arc::new(LazyChainHandle {
            object: Arc::new(LazyChainObject {
                generator: Arc::new(move |i| {
                    if i < rounds {
                        generator(i)
                    } else {
                        Arc::clone(&fallback)
                    }
                }),
                n: ctx.n,
                cache: Mutex::new(Vec::new()),
                probe: self.probe.clone(),
                limit: Some(rounds),
            }),
        })
    }

    fn name(&self) -> String {
        format!(
            "{}[f={}; K={}]",
            self.name,
            self.rounds,
            self.fallback.name()
        )
    }
}

/// Where a staged session gets its next stage from.
enum StageSource {
    Eager(Vec<Arc<dyn DecidingObject>>),
    Lazy(Arc<LazyChainObject>),
}

impl StageSource {
    /// Stage `i`, or `None` past the end of a finite chain.
    fn get(&self, i: usize, ctx: &mut Ctx<'_>) -> Option<Arc<dyn DecidingObject>> {
        match self {
            StageSource::Eager(stages) => stages.get(i).cloned(),
            StageSource::Lazy(object) => {
                if object.limit.is_some_and(|limit| i > limit) {
                    return None;
                }
                Some(object.stage(i, ctx))
            }
        }
    }
}

/// The session implementing the skip-on-decide composition semantics for
/// both [`Chain`] and [`LazyChain`].
struct StagedSession {
    source: StageSource,
    pid: ProcessId,
    cur: usize,
    inner: Option<Box<dyn Session + Send>>,
    probe: Option<Arc<ChainProbe>>,
}

impl StagedSession {
    /// Handles a stage's action: pass through operations; on halt, either
    /// finish (decided, or chain exhausted) or start the next stage with the
    /// halted value as input. Loops because a freshly begun stage may halt
    /// immediately.
    fn advance(&mut self, mut action: Action, ctx: &mut Ctx<'_>) -> Action {
        loop {
            match action {
                Action::Invoke(_) => return action,
                Action::Halt(d) => {
                    if let Some(probe) = &self.probe {
                        if d.is_decided() {
                            probe.record_halt(self.cur, true);
                            return Action::Halt(d);
                        }
                    } else if d.is_decided() {
                        return Action::Halt(d);
                    }
                    // Move to the next stage, if any.
                    self.cur += 1;
                    let Some(next) = self.source.get(self.cur, ctx) else {
                        // Finite chain exhausted: its output is the last
                        // stage's output.
                        if let Some(probe) = &self.probe {
                            probe.record_halt(self.cur - 1, false);
                        }
                        return Action::Halt(d);
                    };
                    if let Some(probe) = &self.probe {
                        probe.record_stage(self.cur);
                    }
                    let mut session = next.session(self.pid);
                    action = session.begin(d.value(), ctx);
                    self.inner = Some(session);
                }
            }
        }
    }
}

impl Session for StagedSession {
    fn begin(&mut self, input: Value, ctx: &mut Ctx<'_>) -> Action {
        let first = self
            .source
            .get(0, ctx)
            .expect("chains have at least one stage");
        if let Some(probe) = &self.probe {
            probe.record_stage(0);
        }
        let mut session = first.session(self.pid);
        let action = session.begin(input, ctx);
        self.inner = Some(session);
        self.advance(action, ctx)
    }

    fn poll(&mut self, response: Response, ctx: &mut Ctx<'_>) -> Action {
        let session = self.inner.as_mut().expect("active stage session");
        let action = session.poll(response, ctx);
        self.advance(action, ctx)
    }

    fn snapshot(&self, sink: &mut StateSink) {
        // `cur` pins which stage's session the inner atoms belong to, so
        // atom sequences from different stages can never collide.
        sink.push_raw(self.cur as u64);
        match &self.inner {
            Some(inner) => {
                sink.push_raw(1);
                inner.snapshot(sink);
            }
            None => sink.push_raw(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conciliator::FirstMoverConciliator;
    use crate::ratifier::Ratifier;
    use mc_model::properties;
    use mc_sim::adversary::{RandomScheduler, RoundRobin};
    use mc_sim::harness::{self, inputs};
    use mc_sim::EngineConfig;

    #[test]
    fn pair_composition_names() {
        let c = Chain::pair(
            Arc::new(FirstMoverConciliator::impatient()),
            Arc::new(Ratifier::binary()),
        );
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert_eq!(c.name(), "(first-mover(2^k/n); ratifier(binary))");
    }

    #[test]
    fn composition_preserves_weak_consensus() {
        // Corollary 4, empirically: (conciliator; ratifier) is a weak
        // consensus object.
        let spec = Chain::pair(
            Arc::new(FirstMoverConciliator::impatient()),
            Arc::new(Ratifier::binary()),
        );
        for seed in 0..40 {
            let ins = inputs::alternating(6, 2);
            let out = harness::run_object(
                &spec,
                &ins,
                &mut RandomScheduler::new(seed),
                seed,
                &EngineConfig::default(),
            )
            .unwrap();
            properties::check_weak_consensus(&ins, &out.outputs).unwrap();
        }
    }

    #[test]
    fn decision_in_first_stage_skips_second() {
        // Unanimous inputs: the first ratifier decides, so the (expensive)
        // second stage contributes no operations — 4 ops per process max.
        let spec = Chain::pair(Arc::new(Ratifier::binary()), Arc::new(Ratifier::binary()));
        let out = harness::run_object(
            &spec,
            &inputs::unanimous(5, 1),
            &mut RoundRobin::new(),
            0,
            &EngineConfig::default(),
        )
        .unwrap();
        assert!(out.outputs.iter().all(|d| d.is_decided()));
        assert!(out.metrics.individual_work() <= 4);
    }

    #[test]
    fn associativity_of_composition() {
        // ((X; Y); Z) behaves like (X; (Y; Z)): same outputs for the same
        // seed and schedule.
        let x = || Arc::new(Ratifier::binary()) as Arc<dyn ObjectSpec>;
        let left = Chain::pair(Arc::new(Chain::pair(x(), x())), x());
        let right = Chain::pair(x(), Arc::new(Chain::pair(x(), x())));
        for seed in 0..20 {
            let ins = inputs::alternating(4, 2);
            let out_l = harness::run_object(
                &left,
                &ins,
                &mut RoundRobin::new(),
                seed,
                &EngineConfig::default(),
            )
            .unwrap();
            let out_r = harness::run_object(
                &right,
                &ins,
                &mut RoundRobin::new(),
                seed,
                &EngineConfig::default(),
            )
            .unwrap();
            assert_eq!(out_l.outputs, out_r.outputs);
            assert_eq!(out_l.metrics.total_work(), out_r.metrics.total_work());
        }
    }

    #[test]
    fn lazy_chain_instantiates_only_reached_stages() {
        let probe = ChainProbe::new();
        let spec = LazyChain::new("lazy-ratifiers", |_| {
            Arc::new(Ratifier::binary()) as Arc<dyn ObjectSpec>
        })
        .with_probe(Arc::clone(&probe));
        // Unanimous inputs: stage 0 decides for everyone.
        let out = harness::run_object(
            &spec,
            &inputs::unanimous(4, 0),
            &mut RoundRobin::new(),
            0,
            &EngineConfig::default(),
        )
        .unwrap();
        assert!(out.outputs.iter().all(|d| d.is_decided()));
        assert_eq!(probe.max_stage(), 0);
        // Stage 0's registers only: 3 for a binary ratifier.
        assert_eq!(out.metrics.registers_allocated, 3);
        assert_eq!(probe.halts(), vec![(0, true); 4]);
    }

    #[test]
    fn bounded_chain_decides_early_without_touching_the_fallback() {
        let probe = ChainProbe::new();
        let spec = BoundedChain::new(
            "bounded",
            |_| Arc::new(Ratifier::binary()) as Arc<dyn ObjectSpec>,
            3,
            Arc::new(Ratifier::binary()),
        )
        .with_probe(Arc::clone(&probe));
        assert_eq!(spec.fallback_index(), 3);
        // Unanimous inputs: stage 0 decides for everyone; the fallback (and
        // stages 1–2) are never instantiated.
        let out = harness::run_object(
            &spec,
            &inputs::unanimous(4, 1),
            &mut RoundRobin::new(),
            0,
            &EngineConfig::default(),
        )
        .unwrap();
        assert!(out.outputs.iter().all(|d| d.is_decided()));
        assert_eq!(probe.max_stage(), 0);
        assert_eq!(out.metrics.registers_allocated, 3);
    }

    #[test]
    fn exhausted_bounded_chain_enters_the_fallback() {
        // Conciliators never decide, so every process traverses all f of
        // them and lands in the fallback ratifier at index f.
        let probe = ChainProbe::new();
        let f = 2;
        let spec = BoundedChain::new(
            "all-conciliators",
            |_| Arc::new(FirstMoverConciliator::impatient()) as Arc<dyn ObjectSpec>,
            f,
            Arc::new(Ratifier::binary()),
        )
        .with_probe(Arc::clone(&probe));
        let out = harness::run_object(
            &spec,
            &inputs::unanimous(3, 1),
            &mut RandomScheduler::new(7),
            7,
            &EngineConfig::default(),
        )
        .unwrap();
        assert_eq!(probe.max_stage(), spec.fallback_index());
        // The fallback ratifier sees a single (conciliated or unanimous)
        // value and decides it.
        assert!(out.outputs.iter().all(|d| d.is_decided()));
        assert_eq!(out.outputs[0].value(), 1);
    }

    #[test]
    fn bounded_chain_preserves_weak_consensus() {
        // Corollary 4 applied to the truncation: even when the fallback is
        // only a ratifier (weak consensus), the composite stays a weak
        // consensus object on every schedule.
        for seed in 0..40 {
            let spec = BoundedChain::new(
                "truncated",
                |i| {
                    if i % 2 == 0 {
                        Arc::new(FirstMoverConciliator::impatient()) as Arc<dyn ObjectSpec>
                    } else {
                        Arc::new(Ratifier::binary()) as Arc<dyn ObjectSpec>
                    }
                },
                4,
                Arc::new(Ratifier::binary()),
            );
            let ins = inputs::alternating(6, 2);
            let out = harness::run_object(
                &spec,
                &ins,
                &mut RandomScheduler::new(seed),
                seed,
                &EngineConfig::default(),
            )
            .unwrap();
            properties::check_weak_consensus(&ins, &out.outputs).unwrap();
        }
    }

    #[test]
    fn zero_round_bounded_chain_is_just_the_fallback() {
        let spec = BoundedChain::new(
            "fallback-only",
            |_| unreachable!("no generated stages"),
            0,
            Arc::new(Ratifier::binary()),
        );
        let out = harness::run_object(
            &spec,
            &inputs::unanimous(3, 0),
            &mut RoundRobin::new(),
            0,
            &EngineConfig::default(),
        )
        .unwrap();
        assert!(out.outputs.iter().all(|d| d.is_decided() && d.value() == 0));
        assert_eq!(spec.name(), "fallback-only[f=0; K=ratifier(binary)]");
    }

    #[test]
    fn probe_reset_clears_state() {
        let probe = ChainProbe::new();
        probe.record_stage(5);
        probe.record_halt(5, true);
        probe.reset();
        assert_eq!(probe.max_stage(), 0);
        assert!(probe.halts().is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_chain_rejected() {
        Chain::new(Vec::new());
    }
}
