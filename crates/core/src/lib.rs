//! Conciliators, ratifiers, and modular consensus protocols.
//!
//! This crate implements the contribution of Aspnes, *A Modular Approach to
//! Shared-Memory Consensus, with Applications to the Probabilistic-Write
//! Model* (PODC 2010):
//!
//! * [`conciliator`] — weak consensus objects that *produce* agreement with
//!   constant probability: the paper's
//!   [`ImpatientFirstMoverConciliator`](conciliator::FirstMoverConciliator)
//!   (Theorem 7, one register, `O(log n)` individual / `O(n)` total work in
//!   the probabilistic-write model), the fixed-probability
//!   Chor–Israeli–Li-style baseline, and
//!   [`conciliator::CoinConciliator`] built from any weak
//!   shared coin (Theorem 6).
//! * [`ratifier`] — deterministic weak consensus objects that *detect*
//!   agreement: the quorum [`ratifier::Ratifier`] of §6
//!   (Theorem 8) over any [`QuorumScheme`](mc_quorums::QuorumScheme), plus
//!   the cheap-collect variant (§6.2 item 4).
//! * [`coin`] — weak shared coins: a per-process voting coin in the style of
//!   Aspnes–Herlihy (works against the adaptive adversary) and an adapter
//!   deriving a coin from any conciliator.
//! * [`compose`] — the composition operator `(X; Y)` of §3.2 with its
//!   exception-like skip-on-decide semantics, finite [`compose::Chain`]s
//!   and the lazily instantiated unbounded [`compose::LazyChain`].
//! * [`protocol`] — the three consensus constructions of §4: the unbounded
//!   alternation `R₋₁; R₀; C₁; R₁; C₂; R₂; …` with fast path, the bounded
//!   truncation with a fallback protocol (Theorem 5), and the ratifier-only
//!   protocol for restricted schedulers (§4.2).
//!
//! All objects are expressed as [`mc_model`] sessions and run on any driver;
//! the test-suite and experiments drive them with the `mc-sim` engine.
//!
//! # Example: binary consensus in the probabilistic-write model
//!
//! ```
//! use mc_core::protocol::ConsensusBuilder;
//! use mc_sim::{adversary::RandomScheduler, harness, EngineConfig};
//!
//! let spec = ConsensusBuilder::binary().build();
//! let outcome = harness::run_object(
//!     &spec,
//!     &[0, 1, 1, 0, 1],
//!     &mut RandomScheduler::new(1),
//!     7,
//!     &EngineConfig::default(),
//! )
//! .unwrap();
//! mc_model::properties::check_consensus(&[0, 1, 1, 0, 1], &outcome.outputs).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coin;
pub mod compose;
pub mod conciliator;
pub mod protocol;
pub mod ratifier;

pub use coin::{ConciliatorCoin, InvalidQuorumFactor, VotingSharedCoin};
pub use compose::{BoundedChain, Chain, ChainProbe, LazyChain};
pub use conciliator::{
    CoinConciliator, DummyWriteConciliator, FirstMoverConciliator, WriteSchedule,
};
pub use protocol::ConsensusBuilder;
pub use ratifier::{CollectRatifier, Ratifier};
