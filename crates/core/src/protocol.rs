//! The consensus constructions of §4.
//!
//! * **Unbounded** (§4.1.1): `U = R₋₁; R₀; C₁; R₁; C₂; R₂; …` — an infinite
//!   alternation of ratifiers and conciliators, preceded by a two-ratifier
//!   *fast path* that decides without any conciliator when the fastest
//!   processes already agree. Terminates with probability 1 because each
//!   conciliator produces agreement with probability `δ` and the following
//!   ratifier then forces a decision; expected conciliator rounds `≤ 1/δ`.
//! * **Bounded** (§4.1.2, Theorem 5): truncate after `k` conciliator rounds
//!   and fall back to a self-contained consensus protocol `K`; the fallback
//!   is reached with probability `(1 − δ)^k`, so `k = Θ(log n)` makes its
//!   contribution to expected cost negligible.
//! * **Ratifier-only** (§4.2): `R = R₁; R₂; …` with no conciliators at all;
//!   terminates under scheduling restrictions (noisy or priority schedulers)
//!   because some process eventually runs far enough ahead to pass a
//!   ratifier alone.

use std::sync::Arc;

use mc_model::ObjectSpec;

use crate::compose::{ChainProbe, LazyChain};
use crate::conciliator::FirstMoverConciliator;
use crate::ratifier::Ratifier;

/// Builder for consensus objects from conciliator and ratifier parts.
///
/// The default configuration is the paper's headline protocol for the
/// probabilistic-write model: impatient first-mover conciliators, binomial
/// quorum ratifiers, fast path on, unbounded.
///
/// # Example
///
/// ```
/// use mc_core::protocol::ConsensusBuilder;
/// use mc_core::compose::ChainProbe;
///
/// let probe = ChainProbe::new();
/// let spec = ConsensusBuilder::multivalued(10)
///     .bounded(8)
///     .probe(std::sync::Arc::clone(&probe))
///     .build();
/// // `spec` is an ObjectSpec; run it with the mc-sim harness.
/// ```
#[derive(Clone)]
pub struct ConsensusBuilder {
    conciliator: Arc<dyn ObjectSpec>,
    ratifier: Arc<dyn ObjectSpec>,
    fast_path: bool,
    rounds_before_fallback: Option<usize>,
    fallback: Option<Arc<dyn ObjectSpec>>,
    probe: Option<Arc<ChainProbe>>,
    label: String,
}

impl ConsensusBuilder {
    /// Consensus from explicit conciliator and ratifier specs.
    ///
    /// One spec instance is reused for every round; each round instantiates
    /// a fresh object from it.
    pub fn new(
        conciliator: Arc<dyn ObjectSpec>,
        ratifier: Arc<dyn ObjectSpec>,
    ) -> ConsensusBuilder {
        let label = format!("consensus[{}; {}]", conciliator.name(), ratifier.name());
        ConsensusBuilder {
            conciliator,
            ratifier,
            fast_path: true,
            rounds_before_fallback: None,
            fallback: None,
            probe: None,
            label,
        }
    }

    /// Binary consensus in the probabilistic-write model: impatient
    /// conciliator + 3-register binary ratifier. `O(log n)` expected
    /// individual work, `O(n)` expected total work.
    pub fn binary() -> ConsensusBuilder {
        ConsensusBuilder::new(
            Arc::new(FirstMoverConciliator::impatient()),
            Arc::new(Ratifier::binary()),
        )
    }

    /// `m`-valued consensus in the probabilistic-write model: impatient
    /// conciliator + binomial quorum ratifier. `O(log n + log m)` expected
    /// individual work, `O(n log m)` expected total work.
    ///
    /// # Panics
    ///
    /// Panics if `m < 2`.
    pub fn multivalued(m: u64) -> ConsensusBuilder {
        assert!(m >= 2, "consensus needs at least 2 values");
        if m == 2 {
            return ConsensusBuilder::binary();
        }
        ConsensusBuilder::new(
            Arc::new(FirstMoverConciliator::impatient()),
            Arc::new(Ratifier::binomial(m)),
        )
    }

    /// The Chor–Israeli–Li-style baseline: fixed `1/n` write probability
    /// conciliators. Same agreement guarantees, `Θ(n)` individual work.
    pub fn cil_baseline(m: u64) -> ConsensusBuilder {
        let ratifier: Arc<dyn ObjectSpec> = if m <= 2 {
            Arc::new(Ratifier::binary())
        } else {
            Arc::new(Ratifier::binomial(m))
        };
        ConsensusBuilder::new(Arc::new(FirstMoverConciliator::fixed(1.0)), ratifier)
    }

    /// Disables the `R₋₁; R₀` fast-path prefix (the protocol then starts
    /// with `C₁`).
    pub fn without_fast_path(mut self) -> ConsensusBuilder {
        self.fast_path = false;
        self
    }

    /// Truncates after `rounds` conciliator/ratifier pairs, then runs the
    /// fallback protocol `K` (Theorem 5). The default `K` is a CIL-style
    /// racing consensus — a self-contained first-mover protocol with fixed
    /// write probabilities and no fast path.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    pub fn bounded(mut self, rounds: usize) -> ConsensusBuilder {
        assert!(rounds > 0, "at least one round before fallback");
        self.rounds_before_fallback = Some(rounds);
        self
    }

    /// Overrides the fallback protocol used by [`bounded`](Self::bounded).
    ///
    /// The spec must itself be a full consensus object (always decides).
    pub fn fallback_with(mut self, fallback: Arc<dyn ObjectSpec>) -> ConsensusBuilder {
        self.fallback = Some(fallback);
        self
    }

    /// Attaches a probe recording chain depth and per-process halt sites
    /// (used by the round-count and fallback-rate experiments).
    pub fn probe(mut self, probe: Arc<ChainProbe>) -> ConsensusBuilder {
        self.probe = Some(probe);
        self
    }

    /// Builds the consensus object as a lazily instantiated chain.
    pub fn build(self) -> LazyChain {
        let conciliator = self.conciliator;
        let ratifier = self.ratifier;
        let prefix = if self.fast_path { 2 } else { 0 };
        let fallback_start = self
            .rounds_before_fallback
            .map(|rounds| prefix + 2 * rounds);
        let fallback: Option<Arc<dyn ObjectSpec>> = match (fallback_start, self.fallback) {
            (Some(_), Some(f)) => Some(f),
            (Some(_), None) => Some(Arc::new(default_fallback(Arc::clone(&ratifier)))),
            (None, _) => None,
        };
        let mut label = self.label;
        if self.fast_path {
            label.push_str("+fast");
        }
        if let Some(k) = self.rounds_before_fallback {
            label.push_str(&format!("+bounded({k})"));
        }
        let chain = LazyChain::new(label, move |stage| {
            if let Some(start) = fallback_start {
                if stage >= start {
                    return Arc::clone(fallback.as_ref().expect("fallback configured"));
                }
            }
            if stage < prefix {
                // The fast path R₋₁; R₀.
                return Arc::clone(&ratifier);
            }
            // Alternating C_i; R_i after the prefix.
            if (stage - prefix) % 2 == 0 {
                Arc::clone(&conciliator)
            } else {
                Arc::clone(&ratifier)
            }
        });
        match self.probe {
            Some(p) => chain.with_probe(p),
            None => chain,
        }
    }
}

impl std::fmt::Debug for ConsensusBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConsensusBuilder")
            .field("conciliator", &self.conciliator.name())
            .field("ratifier", &self.ratifier.name())
            .field("fast_path", &self.fast_path)
            .field("rounds_before_fallback", &self.rounds_before_fallback)
            .finish()
    }
}

/// The default fallback `K`: a self-contained CIL-style racing consensus —
/// unbounded alternation of fixed-probability first-mover conciliators with
/// the given ratifier, no fast path.
///
/// The paper's Theorem 5 uses "e.g. the polynomial-time bounded-space
/// construction of [4]" here; any terminating consensus protocol works, and
/// this one lives in the same probabilistic-write model. Its register
/// *count* is bounded per round and the expected number of rounds is
/// constant; see DESIGN.md for the substitution note.
fn default_fallback(ratifier: Arc<dyn ObjectSpec>) -> LazyChain {
    LazyChain::new("cil-racing-fallback", move |stage| {
        if stage % 2 == 0 {
            Arc::new(FirstMoverConciliator::fixed(1.0)) as Arc<dyn ObjectSpec>
        } else {
            Arc::clone(&ratifier)
        }
    })
}

/// The ratifier-only protocol `R = R₁; R₂; …` of §4.2.
///
/// Not a consensus protocol under a general adversary (it can livelock),
/// but terminates under the noisy scheduler and under priority scheduling,
/// where some process eventually completes a ratifier before any process
/// with a conflicting value enters it.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use mc_core::{protocol::ratifier_only, Ratifier};
/// use mc_sim::{harness, sched::PriorityScheduler, EngineConfig};
///
/// let spec = ratifier_only(Arc::new(Ratifier::binary()));
/// let outcome = harness::run_object(
///     &spec,
///     &[0, 1, 1],
///     &mut PriorityScheduler::descending(3),
///     0,
///     &EngineConfig::default(),
/// )
/// .unwrap();
/// // The highest-priority process runs solo and drags everyone along.
/// assert!(outcome.outputs.iter().all(|d| d.is_decided()));
/// ```
pub fn ratifier_only(ratifier: Arc<dyn ObjectSpec>) -> LazyChain {
    let label = format!("ratifier-only[{}]", ratifier.name());
    LazyChain::new(label, move |_| Arc::clone(&ratifier))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_model::properties;
    use mc_sim::adversary::{
        FixedOrder, ImpatienceExploiter, RandomScheduler, RoundRobin, SplitKeeper, WriteBlocker,
    };
    use mc_sim::harness::{self, inputs};
    use mc_sim::sched::{NoisyScheduler, PriorityScheduler};
    use mc_sim::{EngineConfig, RunError};

    type AdversaryFactory = fn(u64, usize) -> Box<dyn mc_sim::Adversary>;

    #[test]
    fn binary_consensus_under_every_adversary() {
        let spec = ConsensusBuilder::binary().build();
        let adversaries: Vec<AdversaryFactory> = vec![
            |_, _| Box::new(RoundRobin::new()),
            |s, _| Box::new(RandomScheduler::new(s)),
            |_, _| Box::new(ImpatienceExploiter::new()),
            |s, _| Box::new(SplitKeeper::new(s)),
            |_, _| Box::new(WriteBlocker::new()),
            |_, n| Box::new(FixedOrder::bursty(n, 3)),
        ];
        let n = 6;
        for mk in &adversaries {
            for seed in 0..15 {
                let ins = inputs::alternating(n, 2);
                let mut adv = mk(seed, n);
                let name = adv.name();
                let out =
                    harness::run_object(&spec, &ins, adv.as_mut(), seed, &EngineConfig::default())
                        .unwrap_or_else(|e| panic!("{name}: {e}"));
                properties::check_consensus(&ins, &out.outputs)
                    .unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
            }
        }
    }

    #[test]
    fn multivalued_consensus_is_correct() {
        for m in [3u64, 8, 50] {
            let spec = ConsensusBuilder::multivalued(m).build();
            for seed in 0..10 {
                let ins = inputs::random(7, m, seed);
                let out = harness::run_object(
                    &spec,
                    &ins,
                    &mut RandomScheduler::new(seed),
                    seed,
                    &EngineConfig::default(),
                )
                .unwrap();
                properties::check_consensus(&ins, &out.outputs).unwrap();
            }
        }
    }

    #[test]
    fn fast_path_decides_unanimous_inputs_without_conciliators() {
        let probe = ChainProbe::new();
        let spec = ConsensusBuilder::binary().probe(Arc::clone(&probe)).build();
        let out = harness::run_object(
            &spec,
            &inputs::unanimous(8, 1),
            &mut RoundRobin::new(),
            3,
            &EngineConfig::default(),
        )
        .unwrap();
        properties::check_consensus(&inputs::unanimous(8, 1), &out.outputs).unwrap();
        // Everyone decided within the two fast-path ratifiers (stages 0–1).
        assert!(probe.max_stage() <= 1, "max stage {}", probe.max_stage());
        // 4 ops in R₋₁ (+ up to 4 in R₀ for coherence stragglers).
        assert!(out.metrics.individual_work() <= 8);
    }

    #[test]
    fn bounded_construction_decides_and_rarely_falls_back() {
        let probe = ChainProbe::new();
        let spec = ConsensusBuilder::binary()
            .bounded(10)
            .probe(Arc::clone(&probe))
            .build();
        for seed in 0..30 {
            let ins = inputs::alternating(5, 2);
            let out = harness::run_object(
                &spec,
                &ins,
                &mut RandomScheduler::new(seed),
                seed,
                &EngineConfig::default(),
            )
            .unwrap();
            properties::check_consensus(&ins, &out.outputs).unwrap();
        }
        // Fallback starts at stage 2 + 2·10 = 22; with δ ≈ 0.35+ observed,
        // 30 runs should never get near it.
        assert!(probe.max_stage() < 22, "max stage {}", probe.max_stage());
    }

    #[test]
    fn fallback_is_reachable_and_correct_when_rounds_is_tiny() {
        // With one round before fallback, disagreement after C₁;R₁ lands in
        // the fallback — which must still produce correct consensus.
        let probe = ChainProbe::new();
        let spec = ConsensusBuilder::binary()
            .bounded(1)
            .probe(Arc::clone(&probe))
            .build();
        let mut fellback = 0;
        for seed in 0..100 {
            let ins = inputs::alternating(6, 2);
            let out = harness::run_object(
                &spec,
                &ins,
                &mut RandomScheduler::new(seed),
                seed,
                &EngineConfig::default(),
            )
            .unwrap();
            properties::check_consensus(&ins, &out.outputs).unwrap();
            if probe.max_stage() >= 4 {
                fellback += 1;
            }
            probe.reset();
        }
        assert!(fellback > 0, "fallback never exercised in 100 runs");
    }

    #[test]
    fn ratifier_only_livelocks_under_round_robin() {
        let spec = ratifier_only(Arc::new(Ratifier::binary()));
        let err = harness::run_object(
            &spec,
            &inputs::alternating(2, 2),
            &mut RoundRobin::new(),
            0,
            &EngineConfig::default().with_max_steps(10_000),
        )
        .unwrap_err();
        assert!(matches!(err, RunError::StepLimitExceeded { .. }));
    }

    #[test]
    fn ratifier_only_terminates_under_priority_scheduling() {
        let spec = ratifier_only(Arc::new(Ratifier::binary()));
        for n in [2usize, 4, 8] {
            let ins = inputs::alternating(n, 2);
            let out = harness::run_object(
                &spec,
                &ins,
                &mut PriorityScheduler::descending(n),
                1,
                &EngineConfig::default(),
            )
            .unwrap();
            properties::check_consensus(&ins, &out.outputs).unwrap();
        }
    }

    #[test]
    fn ratifier_only_terminates_under_noisy_scheduler() {
        let spec = ratifier_only(Arc::new(Ratifier::binary()));
        for seed in 0..5 {
            let n = 4;
            let ins = inputs::alternating(n, 2);
            let out = harness::run_object(
                &spec,
                &ins,
                &mut NoisyScheduler::new(n, 0.5, seed),
                seed,
                &EngineConfig::default(),
            )
            .unwrap();
            properties::check_consensus(&ins, &out.outputs).unwrap();
        }
    }

    #[test]
    fn builder_labels_are_descriptive() {
        let spec = ConsensusBuilder::binary().bounded(4).build();
        let name = mc_model::ObjectSpec::name(&spec);
        assert!(name.contains("first-mover(2^k/n)"), "{name}");
        assert!(name.contains("+fast"), "{name}");
        assert!(name.contains("bounded(4)"), "{name}");
    }

    #[test]
    #[should_panic(expected = "at least 2 values")]
    fn degenerate_m_rejected() {
        ConsensusBuilder::multivalued(1);
    }
}
