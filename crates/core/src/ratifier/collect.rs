//! The cheap-collect ratifier (§6.2 item 4).

use std::sync::Arc;

use mc_model::{
    Action, Ctx, DecidingObject, Decision, InstantiateCtx, ObjectSpec, Op, ProcessId, RegisterId,
    Response, Session, StateSink, SymmetrySpec, Value,
};

/// The ratifier for the cheap-snapshot/cheap-collect model (§6.2 item 4):
/// each process announces its value in its own single-writer register
/// (a size-1 write quorum) and detects conflicts with a single `O(1)`-cost
/// collect over all `n` announcement registers (a read quorum of everything
/// else).
///
/// Individual work is 4 operations as in the binary case, for *any* `m` —
/// which is what makes this model useful for calibrating lower bounds, even
/// though `O(1)` collects are not realistic (§6.2).
///
/// Requires the engine's cheap-collect model
/// (`EngineConfig::with_cheap_collect` in `mc-sim`);
/// in the default model the run fails with `CollectDisallowed`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CollectRatifier;

impl CollectRatifier {
    /// Creates the cheap-collect ratifier.
    pub fn new() -> CollectRatifier {
        CollectRatifier
    }

    /// Worst-case operations per process: announce, proposal read, proposal
    /// write, collect.
    pub fn individual_work_bound(&self) -> u64 {
        4
    }
}

struct CollectObject {
    announce: RegisterId,
    proposal: RegisterId,
    n: u64,
}

impl DecidingObject for CollectObject {
    fn session(&self, pid: ProcessId) -> Box<dyn Session + Send> {
        Box::new(CollectSession {
            announce: self.announce,
            proposal: self.proposal,
            n: self.n,
            pid,
            input: 0,
            preference: 0,
            state: State::Announcing,
        })
    }

    fn symmetry(&self) -> SymmetrySpec {
        // Each process only touches its own announce slot, so permuting
        // pids is absorbed by permuting the announce block. Announcements
        // and the proposal hold actual input values, so the binary swap
        // rewrites their contents.
        SymmetrySpec {
            pid_oblivious: true,
            value_symmetric: true,
            value_registers: vec![(self.announce, self.n), (self.proposal, 1)],
            pid_blocks: vec![self.announce],
            ..SymmetrySpec::default()
        }
    }
}

enum State {
    Announcing,
    ReadingProposal,
    WritingProposal,
    Collecting,
}

struct CollectSession {
    announce: RegisterId,
    proposal: RegisterId,
    n: u64,
    pid: ProcessId,
    input: Value,
    preference: Value,
    state: State,
}

impl Session for CollectSession {
    fn begin(&mut self, input: Value, _ctx: &mut Ctx<'_>) -> Action {
        self.input = input;
        self.state = State::Announcing;
        Action::Invoke(Op::Write {
            reg: self.announce.offset(self.pid.index() as u64),
            value: input,
        })
    }

    fn poll(&mut self, response: Response, _ctx: &mut Ctx<'_>) -> Action {
        match self.state {
            State::Announcing => {
                debug_assert!(matches!(response, Response::Write));
                self.state = State::ReadingProposal;
                Action::Invoke(Op::Read(self.proposal))
            }
            State::ReadingProposal => match response.expect_read() {
                Some(u) => {
                    self.preference = u;
                    self.state = State::Collecting;
                    Action::Invoke(Op::Collect {
                        base: self.announce,
                        len: self.n,
                    })
                }
                None => {
                    self.preference = self.input;
                    self.state = State::WritingProposal;
                    Action::Invoke(Op::Write {
                        reg: self.proposal,
                        value: self.preference,
                    })
                }
            },
            State::WritingProposal => {
                debug_assert!(matches!(response, Response::Write));
                self.state = State::Collecting;
                Action::Invoke(Op::Collect {
                    base: self.announce,
                    len: self.n,
                })
            }
            State::Collecting => {
                let seen = response.expect_collect();
                let conflict = seen.into_iter().flatten().any(|v| v != self.preference);
                if conflict {
                    Action::Halt(Decision::continue_with(self.preference))
                } else {
                    Action::Halt(Decision::decide(self.preference))
                }
            }
        }
    }

    fn snapshot(&self, sink: &mut StateSink) {
        // `pid` is implicit in the process index and its register use is
        // covered by the announce pid-block, so it is deliberately
        // omitted; `n` and the register ids are static layout.
        let (state, pref_set) = match self.state {
            State::Announcing => (0, false),
            State::ReadingProposal => (1, false),
            State::WritingProposal => (2, true),
            State::Collecting => (3, true),
        };
        sink.push_raw(state);
        sink.push_value(self.input);
        sink.push_maybe_value(pref_set.then_some(self.preference));
    }
}

impl ObjectSpec for CollectRatifier {
    fn instantiate(&self, ctx: &mut InstantiateCtx<'_>) -> Arc<dyn DecidingObject> {
        let announce = ctx.alloc.alloc_block(ctx.n as u64);
        let proposal = ctx.alloc.alloc_block(1);
        Arc::new(CollectObject {
            announce,
            proposal,
            n: ctx.n as u64,
        })
    }

    fn name(&self) -> String {
        "ratifier(cheap-collect)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_model::properties;
    use mc_sim::adversary::{RandomScheduler, SplitKeeper};
    use mc_sim::harness::{self, inputs};
    use mc_sim::{EngineConfig, RunError};

    fn config() -> EngineConfig {
        EngineConfig::default().with_cheap_collect()
    }

    #[test]
    fn acceptance_with_constant_work_for_any_m() {
        for m in [2u64, 100, 1 << 30] {
            let ins = inputs::unanimous(6, m - 1);
            let out = harness::run_object(
                &CollectRatifier::new(),
                &ins,
                &mut RandomScheduler::new(1),
                1,
                &config(),
            )
            .unwrap();
            properties::check_acceptance(&ins, &out.outputs).unwrap();
            assert!(out.metrics.individual_work() <= 4);
        }
    }

    #[test]
    fn weak_consensus_under_adaptive_attack() {
        for seed in 0..25 {
            let ins = inputs::alternating(6, 4);
            let out = harness::run_object(
                &CollectRatifier::new(),
                &ins,
                &mut SplitKeeper::new(seed),
                seed,
                &config(),
            )
            .unwrap();
            properties::check_weak_consensus(&ins, &out.outputs).unwrap();
        }
    }

    #[test]
    fn rejected_outside_cheap_collect_model() {
        let err = harness::run_object(
            &CollectRatifier::new(),
            &inputs::unanimous(3, 0),
            &mut RandomScheduler::new(0),
            0,
            &EngineConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, RunError::CollectDisallowed { .. }));
    }
}
