//! Ratifiers: deterministic weak consensus objects that detect agreement
//! (§3.1.2, §6).
//!
//! A ratifier satisfies validity, termination, coherence, and *acceptance*:
//! if all inputs equal `v`, all outputs are `(1, v)`. It never needs
//! randomness — agreement detection is a purely combinatorial problem solved
//! by cross-intersecting quorums (see `mc-quorums`).

mod collect;
mod quorum;

pub use collect::CollectRatifier;
pub use quorum::Ratifier;
