//! The quorum-based deterministic ratifier (Procedure Ratifier, Theorem 8).

use std::sync::Arc;

use mc_model::{
    Action, Ctx, DecidingObject, Decision, InstantiateCtx, ObjectSpec, Op, ProcessId, RegisterId,
    Response, Session, StateSink, SymmetrySpec, Value,
};
use mc_quorums::{BinaryScheme, BinomialScheme, BitVectorScheme, QuorumScheme};

/// Procedure Ratifier (§6.1):
///
/// ```text
/// shared data: register proposal, initially ⊥; binary registers r_i, initially 0
/// foreach r_i ∈ W_v do r_i ← 1                       // announce v
/// u ← proposal
/// if u ≠ ⊥ then preference ← u
/// else { preference ← v; proposal ← preference }
/// if r_i ≠ 0 for some r_i ∈ R_preference then return (0, preference)
/// else return (1, preference)
/// ```
///
/// Theorem 8: with quorums satisfying `W_v′ ∩ R_v = ∅ ⟺ v′ = v`, this is a
/// ratifier — it satisfies termination, validity, coherence, and acceptance
/// for any number of processes.
///
/// Cost is `|W_v| + |R_pref| + 2` operations and `pool + 1` registers; the
/// choice of [`QuorumScheme`] instantiates the paper's variants:
///
/// * [`Ratifier::binary`] — 3 registers, ≤ 4 operations (§6.2 item 1);
/// * [`Ratifier::binomial`] — `⌈lg m⌉ + Θ(log log m)` registers/work,
///   optimal by Bollobás's theorem (§6.2 item 2, Theorem 10);
/// * [`Ratifier::bitvector`] — `2⌈lg m⌉ + 1` registers, ≤ `2⌈lg m⌉ + 2`
///   operations (§6.2 item 3).
///
/// The scan short-circuits at the first conflicting announcement (the bound
/// is on the worst case, so early exit only helps).
///
/// # Example
///
/// ```
/// use mc_core::Ratifier;
/// use mc_model::properties;
/// use mc_sim::{adversary::RoundRobin, harness, EngineConfig};
///
/// // Unanimous inputs: everyone must decide them (acceptance).
/// let outcome = harness::run_object(
///     &Ratifier::binomial(100),
///     &[42; 5],
///     &mut RoundRobin::new(),
///     0,
///     &EngineConfig::default(),
/// )
/// .unwrap();
/// properties::check_acceptance(&[42; 5], &outcome.outputs).unwrap();
/// ```
#[derive(Clone)]
pub struct Ratifier {
    scheme: Arc<dyn QuorumScheme>,
}

impl Ratifier {
    /// Builds a ratifier over an arbitrary quorum scheme.
    ///
    /// The scheme is trusted to satisfy Theorem 8's hypothesis; verify new
    /// schemes with [`mc_quorums::verify::check_cross_intersection`].
    pub fn with_scheme(scheme: Arc<dyn QuorumScheme>) -> Ratifier {
        Ratifier { scheme }
    }

    /// The 2-valued ratifier: 3 registers, at most 4 operations.
    pub fn binary() -> Ratifier {
        Ratifier::with_scheme(Arc::new(BinaryScheme::new()))
    }

    /// The optimal `m`-valued ratifier via `⌊k/2⌋`-subset quorums.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn binomial(m: u64) -> Ratifier {
        Ratifier::with_scheme(Arc::new(
            BinomialScheme::for_capacity(m).expect("m must be positive"),
        ))
    }

    /// The simpler `m`-valued ratifier via bit-pair quorums.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn bitvector(m: u64) -> Ratifier {
        Ratifier::with_scheme(Arc::new(
            BitVectorScheme::for_capacity(m).expect("m must be positive"),
        ))
    }

    /// Number of values this ratifier supports.
    pub fn capacity(&self) -> u64 {
        self.scheme.capacity()
    }

    /// Registers used: the announcement pool plus the proposal register.
    pub fn register_count(&self) -> u64 {
        self.scheme.pool_size() + 1
    }

    /// Worst-case operations per process.
    pub fn individual_work_bound(&self) -> u64 {
        self.scheme.individual_work_bound()
    }
}

impl std::fmt::Debug for Ratifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ratifier")
            .field("scheme", &self.scheme.name())
            .finish()
    }
}

struct RatifierObject {
    scheme: Arc<dyn QuorumScheme>,
    /// Announcement pool base; slot `i` of the scheme is `pool.offset(i)`.
    pool: RegisterId,
    proposal: RegisterId,
}

impl DecidingObject for RatifierObject {
    fn session(&self, _pid: ProcessId) -> Box<dyn Session + Send> {
        Box::new(RatifierSession {
            scheme: Arc::clone(&self.scheme),
            pool: self.pool,
            proposal: self.proposal,
            input: 0,
            preference: 0,
            write_quorum: Vec::new(),
            read_quorum: Vec::new(),
            ix: 0,
            state: State::Announcing,
        })
    }

    fn symmetry(&self) -> SymmetrySpec {
        // Sessions never look at the pid. The binary value swap holds iff
        // the scheme's quorum structure admits a positional slot
        // involution mapping W_0 → W_1 and R_0 → R_1 (the paper's three
        // schemes all do); pool slots hold opaque announcement flags, so
        // only their *identities* swap, while the proposal register holds
        // an actual value.
        let swap = self.scheme.binary_swap();
        SymmetrySpec {
            pid_oblivious: true,
            value_symmetric: swap.is_some(),
            value_registers: vec![(self.proposal, 1)],
            swap_pairs: swap
                .unwrap_or_default()
                .into_iter()
                .map(|(a, b)| (self.pool.offset(a), self.pool.offset(b)))
                .collect(),
            ..SymmetrySpec::default()
        }
    }
}

enum State {
    Announcing,
    ReadingProposal,
    WritingProposal,
    Scanning,
}

struct RatifierSession {
    scheme: Arc<dyn QuorumScheme>,
    pool: RegisterId,
    proposal: RegisterId,
    input: Value,
    preference: Value,
    write_quorum: Vec<u64>,
    read_quorum: Vec<u64>,
    ix: usize,
    state: State,
}

impl RatifierSession {
    fn announce_next(&mut self) -> Action {
        let slot = self.write_quorum[self.ix];
        Action::Invoke(Op::Write {
            reg: self.pool.offset(slot),
            value: 1,
        })
    }

    fn start_scan(&mut self) -> Action {
        self.read_quorum = self.scheme.read_quorum(self.preference);
        self.ix = 0;
        self.state = State::Scanning;
        if self.read_quorum.is_empty() {
            // Degenerate scheme with nothing to scan: no conflict observable.
            return Action::Halt(Decision::decide(self.preference));
        }
        Action::Invoke(Op::Read(self.pool.offset(self.read_quorum[0])))
    }
}

impl Session for RatifierSession {
    fn begin(&mut self, input: Value, _ctx: &mut Ctx<'_>) -> Action {
        assert!(
            input < self.scheme.capacity(),
            "input {input} exceeds ratifier capacity {}",
            self.scheme.capacity()
        );
        self.input = input;
        self.write_quorum = self.scheme.write_quorum(input);
        self.ix = 0;
        self.state = State::Announcing;
        debug_assert!(!self.write_quorum.is_empty());
        self.announce_next()
    }

    fn poll(&mut self, response: Response, _ctx: &mut Ctx<'_>) -> Action {
        match self.state {
            State::Announcing => {
                debug_assert!(matches!(response, Response::Write));
                self.ix += 1;
                if self.ix < self.write_quorum.len() {
                    self.announce_next()
                } else {
                    self.state = State::ReadingProposal;
                    Action::Invoke(Op::Read(self.proposal))
                }
            }
            State::ReadingProposal => match response.expect_read() {
                Some(u) => {
                    // Adopt the earlier proposal.
                    self.preference = u;
                    self.start_scan()
                }
                None => {
                    self.preference = self.input;
                    self.state = State::WritingProposal;
                    Action::Invoke(Op::Write {
                        reg: self.proposal,
                        value: self.preference,
                    })
                }
            },
            State::WritingProposal => {
                debug_assert!(matches!(response, Response::Write));
                self.start_scan()
            }
            State::Scanning => {
                if response.expect_read().is_some() {
                    // A conflicting value has been announced.
                    return Action::Halt(Decision::continue_with(self.preference));
                }
                self.ix += 1;
                if self.ix < self.read_quorum.len() {
                    Action::Invoke(Op::Read(self.pool.offset(self.read_quorum[self.ix])))
                } else {
                    Action::Halt(Decision::decide(self.preference))
                }
            }
        }
    }

    fn snapshot(&self, sink: &mut StateSink) {
        // The quorum vectors are recomputed from (input, preference) at
        // each state transition, so they are derivable and omitted.
        let (state, pref_set) = match self.state {
            State::Announcing => (0, false),
            State::ReadingProposal => (1, false),
            State::WritingProposal => (2, true),
            State::Scanning => (3, true),
        };
        sink.push_raw(state);
        sink.push_raw(self.ix as u64);
        sink.push_value(self.input);
        // Before adoption the preference field is an uninitialized
        // placeholder; snapshotting it as a value would break symmetry
        // matching (the swap would rewrite a meaningless 0 to 1).
        sink.push_maybe_value(pref_set.then_some(self.preference));
    }
}

impl ObjectSpec for Ratifier {
    fn instantiate(&self, ctx: &mut InstantiateCtx<'_>) -> Arc<dyn DecidingObject> {
        let pool = ctx.alloc.alloc_block(self.scheme.pool_size());
        let proposal = ctx.alloc.alloc_block(1);
        Arc::new(RatifierObject {
            scheme: Arc::clone(&self.scheme),
            pool,
            proposal,
        })
    }

    fn name(&self) -> String {
        format!("ratifier({})", self.scheme.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_model::properties;
    use mc_sim::adversary::{RandomScheduler, RoundRobin, SplitKeeper, WriteBlocker};
    use mc_sim::harness::{self, inputs};
    use mc_sim::EngineConfig;

    #[test]
    fn acceptance_on_unanimous_inputs() {
        for ratifier in [
            Ratifier::binary(),
            Ratifier::binomial(8),
            Ratifier::bitvector(8),
        ] {
            for seed in 0..10 {
                let ins = inputs::unanimous(7, 1);
                let out = harness::run_object(
                    &ratifier,
                    &ins,
                    &mut RandomScheduler::new(seed),
                    seed,
                    &EngineConfig::default(),
                )
                .unwrap();
                properties::check_acceptance(&ins, &out.outputs).unwrap();
            }
        }
    }

    #[test]
    fn weak_consensus_properties_under_attack() {
        let attackers: Vec<fn(u64) -> Box<dyn mc_sim::Adversary>> = vec![
            |s| Box::new(RandomScheduler::new(s)),
            |s| Box::new(SplitKeeper::new(s)),
            |_| Box::new(WriteBlocker::new()),
        ];
        for ratifier in [
            Ratifier::binary(),
            Ratifier::binomial(4),
            Ratifier::bitvector(4),
        ] {
            for mk in &attackers {
                for seed in 0..20 {
                    let ins = inputs::alternating(6, ratifier.capacity().min(4));
                    let mut adv = mk(seed);
                    let out = harness::run_object(
                        &ratifier,
                        &ins,
                        adv.as_mut(),
                        seed,
                        &EngineConfig::default(),
                    )
                    .unwrap();
                    properties::check_weak_consensus(&ins, &out.outputs)
                        .unwrap_or_else(|e| panic!("{}: {e}", ratifier.name()));
                }
            }
        }
    }

    #[test]
    fn binary_ratifier_matches_paper_costs() {
        let r = Ratifier::binary();
        assert_eq!(r.register_count(), 3);
        assert_eq!(r.individual_work_bound(), 4);
        let out = harness::run_object(
            &r,
            &inputs::unanimous(4, 0),
            &mut RoundRobin::new(),
            0,
            &EngineConfig::default(),
        )
        .unwrap();
        assert!(out.metrics.individual_work() <= 4);
        assert_eq!(out.metrics.registers_allocated, 3);
    }

    #[test]
    fn observed_work_within_bound_for_all_schemes() {
        for m in [2u64, 5, 16, 100] {
            for ratifier in [Ratifier::binomial(m), Ratifier::bitvector(m)] {
                let bound = ratifier.individual_work_bound();
                for seed in 0..10 {
                    let ins = inputs::alternating(5, m.min(5));
                    let out = harness::run_object(
                        &ratifier,
                        &ins,
                        &mut RandomScheduler::new(seed),
                        seed,
                        &EngineConfig::default(),
                    )
                    .unwrap();
                    assert!(
                        out.metrics.individual_work() <= bound,
                        "{}: {} > {bound}",
                        ratifier.name(),
                        out.metrics.individual_work()
                    );
                }
            }
        }
    }

    #[test]
    fn lone_fast_process_decides_despite_laggards() {
        // p0 runs solo (priority scheduling): it must decide its own value
        // even though p1 with a different input exists but hasn't moved —
        // this is the acceptance-style property the fast path of §4.1.1
        // leans on.
        let out = harness::run_object(
            &Ratifier::binary(),
            &[0, 1],
            &mut mc_sim::sched::PriorityScheduler::descending(2),
            0,
            &EngineConfig::default(),
        )
        .unwrap();
        assert!(out.outputs[0].is_decided());
        assert_eq!(out.outputs[0].value(), 0);
        // And coherence then forces p1 to 0 as well.
        properties::check_coherence(&out.outputs).unwrap();
    }

    #[test]
    fn register_counts_match_theorem_10() {
        for m in [2u64, 4, 16, 256, 4096] {
            let lg = (m as f64).log2().ceil() as u64;
            let binom = Ratifier::binomial(m);
            let bitv = Ratifier::bitvector(m);
            assert!(binom.register_count() >= lg);
            assert!(
                binom.register_count() <= lg + 8,
                "m={m}: {}",
                binom.register_count()
            );
            assert_eq!(bitv.register_count(), 2 * lg.max(1) + 1);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds ratifier capacity")]
    fn oversized_input_rejected() {
        let _ = harness::run_object(
            &Ratifier::binary(),
            &[0, 5],
            &mut RoundRobin::new(),
            0,
            &EngineConfig::default(),
        );
    }
}
