//! A majority-voting weak shared coin.

use std::sync::Arc;

use mc_model::{
    Action, Ctx, DecidingObject, Decision, InstantiateCtx, ObjectSpec, Op, ProcessId, RegisterId,
    Response, Session, StateSink, Value,
};
use rand::RngExt;

/// A weak shared coin by majority voting, in the style of Aspnes–Herlihy
/// \[9\]: each process repeatedly flips a local ±1 vote, adds it to a running
/// tally in its own register, and collects all tallies; once the total
/// number of votes reaches a quorum `T = c·n²`, it decides the sign of the
/// total sum.
///
/// Against an adaptive adversary, at most one vote per process (the pending
/// unwritten one) can be hidden from any reader, so views of the sum differ
/// by at most `n`; since the sum of `T = c·n²` fair votes lands outside
/// `[−n, n]` with constant probability, all processes see the same sign with
/// constant probability — a weak shared coin with constant `δ`.
///
/// Cost: each vote is 1 write + `n` reads, and `Θ(n²)` votes happen in
/// total, so total work is `Θ(n³)` — this is the price of tolerating the
/// adaptive adversary, and exactly why the probabilistic-write conciliator
/// is interesting for weaker adversaries.
#[derive(Debug, Clone, Copy)]
pub struct VotingSharedCoin {
    /// Vote quorum as a multiple of `n²`.
    quorum_factor: u32,
}

impl VotingSharedCoin {
    /// Creates the coin with the default vote quorum `4·n²`.
    pub fn new() -> VotingSharedCoin {
        VotingSharedCoin { quorum_factor: 4 }
    }

    /// Creates the coin with vote quorum `factor · n²`.
    ///
    /// Larger factors raise the agreement probability toward 1 at
    /// proportional extra cost.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidQuorumFactor`] if `factor` is 0 — a zero quorum
    /// would let the first voter decide the "shared" coin alone, silently
    /// destroying the agreement parameter, so the misconfiguration is
    /// surfaced as a value instead of a panic.
    pub fn with_quorum_factor(factor: u32) -> Result<VotingSharedCoin, InvalidQuorumFactor> {
        if factor == 0 {
            return Err(InvalidQuorumFactor);
        }
        Ok(VotingSharedCoin {
            quorum_factor: factor,
        })
    }
}

/// Error from [`VotingSharedCoin::with_quorum_factor`]: the quorum factor
/// must be positive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidQuorumFactor;

impl std::fmt::Display for InvalidQuorumFactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "quorum factor must be positive: a zero quorum lets the first \
             voter decide the shared coin alone"
        )
    }
}

impl std::error::Error for InvalidQuorumFactor {}

impl Default for VotingSharedCoin {
    fn default() -> Self {
        VotingSharedCoin::new()
    }
}

const SUM_OFFSET: i64 = 1 << 31;

/// Packs a (vote count, tally sum) pair into one register word.
fn pack(count: u32, sum: i64) -> Value {
    debug_assert!(sum.unsigned_abs() < (1 << 31));
    ((count as u64) << 32) | ((sum + SUM_OFFSET) as u64 & 0xFFFF_FFFF)
}

/// Inverse of [`pack`].
fn unpack(word: Value) -> (u32, i64) {
    let count = (word >> 32) as u32;
    let sum = (word & 0xFFFF_FFFF) as i64 - SUM_OFFSET;
    (count, sum)
}

struct VotingObject {
    base: RegisterId,
    n: usize,
    quorum: u64,
}

impl DecidingObject for VotingObject {
    fn session(&self, pid: ProcessId) -> Box<dyn Session + Send> {
        Box::new(VotingSession {
            base: self.base,
            n: self.n,
            quorum: self.quorum,
            pid,
            my_count: 0,
            my_sum: 0,
            state: State::Voting,
            scan_ix: 0,
            seen_count: 0,
            seen_sum: 0,
        })
    }
}

enum State {
    Voting,
    Scanning,
}

struct VotingSession {
    base: RegisterId,
    n: usize,
    quorum: u64,
    pid: ProcessId,
    my_count: u32,
    my_sum: i64,
    state: State,
    scan_ix: usize,
    seen_count: u64,
    seen_sum: i64,
}

impl VotingSession {
    fn cast_vote(&mut self, ctx: &mut Ctx<'_>) -> Action {
        let vote: i64 = if ctx.rng.random_bool(0.5) { 1 } else { -1 };
        self.my_count += 1;
        self.my_sum += vote;
        self.state = State::Voting;
        Action::Invoke(Op::Write {
            reg: self.base.offset(self.pid.index() as u64),
            value: pack(self.my_count, self.my_sum),
        })
    }

    fn start_scan(&mut self) -> Action {
        self.scan_ix = 0;
        self.seen_count = 0;
        self.seen_sum = 0;
        self.state = State::Scanning;
        Action::Invoke(Op::Read(self.base))
    }
}

impl Session for VotingSession {
    fn begin(&mut self, _input: Value, ctx: &mut Ctx<'_>) -> Action {
        self.cast_vote(ctx)
    }

    fn poll(&mut self, response: Response, ctx: &mut Ctx<'_>) -> Action {
        match self.state {
            State::Voting => {
                debug_assert!(matches!(response, Response::Write));
                self.start_scan()
            }
            State::Scanning => {
                if let Some(word) = response.expect_read() {
                    let (count, sum) = unpack(word);
                    self.seen_count += u64::from(count);
                    self.seen_sum += sum;
                }
                self.scan_ix += 1;
                if self.scan_ix < self.n {
                    Action::Invoke(Op::Read(self.base.offset(self.scan_ix as u64)))
                } else if self.seen_count >= self.quorum {
                    let bit = u64::from(self.seen_sum >= 0);
                    Action::Halt(Decision::continue_with(bit))
                } else {
                    self.cast_vote(ctx)
                }
            }
        }
    }

    fn snapshot(&self, sink: &mut StateSink) {
        sink.push_raw(match self.state {
            State::Voting => 0,
            State::Scanning => 1,
        });
        // `my_count` doubles as the session's rng-stream position (one draw
        // per vote), so equal snapshots imply equal future vote sequences
        // under a fixed coin policy.
        sink.push_raw(u64::from(self.my_count));
        sink.push_raw(self.my_sum as u64);
        sink.push_raw(self.scan_ix as u64);
        sink.push_raw(self.seen_count);
        sink.push_raw(self.seen_sum as u64);
    }
}

impl ObjectSpec for VotingSharedCoin {
    fn instantiate(&self, ctx: &mut InstantiateCtx<'_>) -> Arc<dyn DecidingObject> {
        let n = ctx.n.max(1);
        Arc::new(VotingObject {
            base: ctx.alloc.alloc_block(n as u64),
            n,
            quorum: (self.quorum_factor as u64) * (n as u64) * (n as u64),
        })
    }

    fn name(&self) -> String {
        format!("voting-coin({}n^2)", self.quorum_factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_sim::adversary::{RandomScheduler, RoundRobin, SplitKeeper};
    use mc_sim::harness::{self, inputs};
    use mc_sim::EngineConfig;

    #[test]
    fn pack_unpack_roundtrip() {
        for (count, sum) in [
            (0u32, 0i64),
            (1, 1),
            (7, -3),
            (1000, 999),
            (1 << 20, -(1 << 20)),
        ] {
            assert_eq!(unpack(pack(count, sum)), (count, sum));
        }
    }

    #[test]
    fn coin_terminates_and_outputs_bits() {
        for seed in 0..10 {
            let out = harness::run_object(
                &VotingSharedCoin::new(),
                &inputs::unanimous(4, 0),
                &mut RandomScheduler::new(seed),
                seed,
                &EngineConfig::default(),
            )
            .unwrap();
            for d in &out.outputs {
                assert!(!d.is_decided());
                assert!(d.value() <= 1);
            }
        }
    }

    #[test]
    fn both_sides_occur_with_constant_probability() {
        let mut zeros = 0;
        let mut ones = 0;
        let trials = 120;
        for seed in 0..trials {
            let out = harness::run_object(
                &VotingSharedCoin::new(),
                &inputs::unanimous(3, 0),
                &mut RoundRobin::new(),
                seed,
                &EngineConfig::default(),
            )
            .unwrap();
            if out.agreed() {
                match out.values()[0] {
                    0 => zeros += 1,
                    1 => ones += 1,
                    v => panic!("non-bit coin value {v}"),
                }
            }
        }
        // δ per side should be well above 5% for a 4n² quorum.
        assert!(
            zeros * 20 >= trials,
            "only {zeros} zero-agreements in {trials}"
        );
        assert!(
            ones * 20 >= trials,
            "only {ones} one-agreements in {trials}"
        );
    }

    #[test]
    fn agreement_survives_adaptive_attack() {
        let stats = harness::run_trials(
            &VotingSharedCoin::new(),
            120,
            99,
            &EngineConfig::default(),
            |_| inputs::unanimous(3, 0),
            |seed| Box::new(SplitKeeper::new(seed)),
        )
        .unwrap();
        assert!(
            stats.agreement_rate() > 0.10,
            "agreement rate {} too low under adaptive attack",
            stats.agreement_rate()
        );
    }

    #[test]
    fn quorum_factor_scales_work() {
        let run = |factor| {
            harness::run_trials(
                &VotingSharedCoin::with_quorum_factor(factor).expect("positive factor"),
                20,
                1,
                &EngineConfig::default(),
                |_| inputs::unanimous(3, 0),
                |seed| Box::new(RandomScheduler::new(seed)),
            )
            .unwrap()
            .mean_total_work()
        };
        assert!(run(8) > run(1) * 2.0);
    }

    #[test]
    fn zero_factor_yields_a_structured_error() {
        let err = VotingSharedCoin::with_quorum_factor(0).unwrap_err();
        assert_eq!(err, InvalidQuorumFactor);
        assert!(
            err.to_string().contains("quorum factor must be positive"),
            "unexpected message: {err}"
        );
        // Positive factors construct normally.
        assert!(VotingSharedCoin::with_quorum_factor(1).is_ok());
    }
}
