//! Weak shared coins (§5.1).
//!
//! A *weak shared coin* with agreement parameter `δ > 0` is a protocol in
//! which each process decides on a bit such that, against any adversary, the
//! probability that all processes decide 0 and the probability that all
//! decide 1 are each at least `δ`.
//!
//! Coins are represented as ordinary [`ObjectSpec`](mc_model::ObjectSpec)s
//! whose sessions *ignore their input* and halt with `(0, bit)`. This lets
//! [`CoinConciliator`](crate::conciliator::CoinConciliator) (Theorem 6) plug
//! in any coin, and lets coins be tested with the same harness as every
//! other deciding object.
//!
//! Implementations:
//!
//! * [`VotingSharedCoin`] — majority voting over per-process tally
//!   registers, in the style of Aspnes–Herlihy. Works against the adaptive
//!   adversary; expensive (`Θ(n)` operations per vote, `Θ(n²)` votes).
//! * [`ConciliatorCoin`] — drives any conciliator with a random bit input;
//!   in the probabilistic-write model this yields a cheap coin from
//!   [`FirstMoverConciliator`](crate::conciliator::FirstMoverConciliator)
//!   with `δ ≥ δ_conciliator / 2`.

mod conciliator_coin;
mod voting;

pub use conciliator_coin::ConciliatorCoin;
pub use voting::{InvalidQuorumFactor, VotingSharedCoin};
