//! A weak shared coin derived from any conciliator.

use std::sync::Arc;

use mc_model::{
    Action, Ctx, DecidingObject, Decision, InstantiateCtx, ObjectSpec, ProcessId, Response,
    Session, Value,
};
use rand::RngExt;

/// Turns a conciliator into a weak shared coin by feeding it a *random bit*
/// as input.
///
/// If the conciliator has agreement probability `δ` and treats its inputs
/// symmetrically, then for each `b ∈ {0, 1}` the probability that all
/// processes output `b` is at least `δ/2` — some process's random input is
/// adopted by everyone with probability ≥ δ, and that input is `b` with
/// probability 1/2 (independent of the adversary's choices in the
/// probabilistic-write model, where inputs are invisible until written).
///
/// In the probabilistic-write model this gives a coin with `O(log n)`
/// individual work from
/// [`FirstMoverConciliator::impatient`](crate::conciliator::FirstMoverConciliator::impatient),
/// closing the circle with §5.1's observation that coins and conciliators
/// are interconvertible.
#[derive(Clone)]
pub struct ConciliatorCoin {
    inner: Arc<dyn ObjectSpec>,
}

impl ConciliatorCoin {
    /// Wraps a conciliator spec as a coin.
    pub fn new(conciliator: Arc<dyn ObjectSpec>) -> ConciliatorCoin {
        ConciliatorCoin { inner: conciliator }
    }
}

impl std::fmt::Debug for ConciliatorCoin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConciliatorCoin")
            .field("inner", &self.inner.name())
            .finish()
    }
}

struct CoinObject {
    inner: Arc<dyn DecidingObject>,
}

impl DecidingObject for CoinObject {
    fn session(&self, pid: ProcessId) -> Box<dyn Session + Send> {
        Box::new(CoinSession {
            inner: self.inner.session(pid),
        })
    }
}

struct CoinSession {
    inner: Box<dyn Session + Send>,
}

impl CoinSession {
    fn map(action: Action) -> Action {
        match action {
            // Whatever the conciliator returns, a coin never decides: strip
            // the decision bit and clamp the value to a bit.
            Action::Halt(d) => Action::Halt(Decision::continue_with(d.value() & 1)),
            invoke => invoke,
        }
    }
}

impl Session for CoinSession {
    fn begin(&mut self, _input: Value, ctx: &mut Ctx<'_>) -> Action {
        let bit = u64::from(ctx.rng.random_bool(0.5));
        Self::map(self.inner.begin(bit, ctx))
    }

    fn poll(&mut self, response: Response, ctx: &mut Ctx<'_>) -> Action {
        Self::map(self.inner.poll(response, ctx))
    }
}

impl ObjectSpec for ConciliatorCoin {
    fn instantiate(&self, ctx: &mut InstantiateCtx<'_>) -> Arc<dyn DecidingObject> {
        Arc::new(CoinObject {
            inner: self.inner.instantiate(ctx),
        })
    }

    fn name(&self) -> String {
        format!("coin-from({})", self.inner.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conciliator::FirstMoverConciliator;
    use mc_sim::adversary::RandomScheduler;
    use mc_sim::harness::{self, inputs};
    use mc_sim::EngineConfig;

    fn coin() -> ConciliatorCoin {
        ConciliatorCoin::new(Arc::new(FirstMoverConciliator::impatient()))
    }

    #[test]
    fn outputs_are_bits_regardless_of_input() {
        for seed in 0..30 {
            let out = harness::run_object(
                &coin(),
                &inputs::unanimous(5, 77), // input ignored
                &mut RandomScheduler::new(seed),
                seed,
                &EngineConfig::default(),
            )
            .unwrap();
            for d in &out.outputs {
                assert!(d.value() <= 1);
                assert!(!d.is_decided());
            }
        }
    }

    #[test]
    fn both_sides_achievable() {
        let mut zeros = 0;
        let mut ones = 0;
        for seed in 0..300 {
            let out = harness::run_object(
                &coin(),
                &inputs::unanimous(8, 0),
                &mut RandomScheduler::new(seed),
                seed,
                &EngineConfig::default(),
            )
            .unwrap();
            if out.agreed() {
                if out.values()[0] == 0 {
                    zeros += 1;
                } else {
                    ones += 1;
                }
            }
        }
        // δ/2 ≈ 2.8% per side at minimum; the observed rate under a random
        // scheduler is far higher. Require 2% to be robust.
        assert!(zeros > 6, "zeros = {zeros}");
        assert!(ones > 6, "ones = {ones}");
    }

    #[test]
    fn name_mentions_inner() {
        assert_eq!(coin().name(), "coin-from(first-mover(2^k/n))");
    }
}
