//! Property-based tests of the correctness-property checkers themselves:
//! the logical implications between the paper's properties must hold for
//! arbitrary input/output vectors.

use mc_model::{properties, Decision, Value};
use proptest::prelude::*;

fn arb_decision() -> impl Strategy<Value = Decision> {
    (any::<bool>(), 0u64..6).prop_map(|(d, v)| {
        if d {
            Decision::decide(v)
        } else {
            Decision::continue_with(v)
        }
    })
}

proptest! {
    /// Full consensus implies weak consensus.
    #[test]
    fn consensus_implies_weak_consensus(
        inputs in prop::collection::vec(0u64..6, 1..8),
        outputs in prop::collection::vec(arb_decision(), 1..8),
    ) {
        if properties::check_consensus(&inputs, &outputs).is_ok() {
            prop_assert!(properties::check_weak_consensus(&inputs, &outputs).is_ok());
        }
    }

    /// Agreement plus a decider implies coherence.
    #[test]
    fn agreement_implies_coherence(outputs in prop::collection::vec(arb_decision(), 0..8)) {
        if properties::check_agreement(&outputs).is_ok() {
            prop_assert!(properties::check_coherence(&outputs).is_ok());
        }
    }

    /// Coherence with at least one decider implies agreement.
    #[test]
    fn coherence_with_decider_implies_agreement(outputs in prop::collection::vec(arb_decision(), 0..8)) {
        let decided = outputs.iter().any(|d| d.is_decided());
        if decided && properties::check_coherence(&outputs).is_ok() {
            prop_assert!(properties::check_agreement(&outputs).is_ok());
        }
    }

    /// Acceptance passing on unanimous inputs implies agreement and full
    /// decision.
    #[test]
    fn acceptance_on_unanimous_implies_decided_agreement(
        v in 0u64..6,
        n in 1usize..8,
        outputs in prop::collection::vec(arb_decision(), 1..8),
    ) {
        let inputs: Vec<Value> = vec![v; n];
        if outputs.len() == n && properties::check_acceptance(&inputs, &outputs).is_ok() {
            prop_assert!(properties::check_agreement(&outputs).is_ok());
            prop_assert!(properties::check_all_decided(&outputs).is_ok());
            prop_assert!(properties::check_validity(&inputs, &outputs).is_ok());
        }
    }

    /// Validity is monotone in the input set: adding inputs never breaks it.
    #[test]
    fn validity_is_monotone_in_inputs(
        inputs in prop::collection::vec(0u64..6, 1..8),
        extra in prop::collection::vec(0u64..6, 0..4),
        outputs in prop::collection::vec(arb_decision(), 0..8),
    ) {
        if properties::check_validity(&inputs, &outputs).is_ok() {
            let mut bigger = inputs.clone();
            bigger.extend(extra);
            prop_assert!(properties::check_validity(&bigger, &outputs).is_ok());
        }
    }

    /// The checkers never panic on arbitrary vectors (total functions).
    #[test]
    fn checkers_are_total(
        inputs in prop::collection::vec(any::<u64>(), 0..8),
        outputs in prop::collection::vec(arb_decision(), 0..8),
    ) {
        let _ = properties::check_validity(&inputs, &outputs);
        let _ = properties::check_agreement(&outputs);
        let _ = properties::check_coherence(&outputs);
        let _ = properties::check_acceptance(&inputs, &outputs);
        let _ = properties::check_all_decided(&outputs);
        let _ = properties::check_consensus(&inputs, &outputs);
        let _ = properties::check_weak_consensus(&inputs, &outputs);
    }
}
