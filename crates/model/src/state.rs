//! State snapshot and symmetry hooks for graph-based model checking.
//!
//! A path-based checker re-executes scripts and never needs to *compare*
//! configurations; a graph-based checker (`mc-check`'s `GraphExplorer`)
//! deduplicates configurations by hashing them, which requires two things
//! of an object that the opaque [`Session`](crate::Session) interface does
//! not provide:
//!
//! 1. **A control-state snapshot.** [`Session::snapshot`](crate::Session::snapshot)
//!    appends the session's control state to a [`StateSink`] as a sequence
//!    of tagged [`StateAtom`]s. Two sessions of the same object with equal
//!    atom sequences must behave identically on every future
//!    response — the snapshot is the session's state-machine configuration,
//!    not a debug dump. Fields derivable from other snapshotted fields
//!    (e.g. a quorum vector recomputed from a snapshotted preference) may
//!    be omitted; constants of the object must be.
//! 2. **A symmetry certificate.** [`DecidingObject::symmetry`](crate::DecidingObject::symmetry)
//!    returns a [`SymmetrySpec`] declaring which structural symmetries the
//!    object's *code* respects, so the checker may identify configurations
//!    that differ only by a process-id permutation or a binary value swap.
//!
//! Both hooks have conservative defaults (snapshot unsupported, no
//! symmetries), so existing objects keep working with the path-based
//! checker and simply opt out of the graph engine.
//!
//! # Why atoms are tagged
//!
//! A value swap must rewrite *values* held in control state (inputs,
//! preferences) while leaving opaque counters and state discriminants
//! alone. Tagging each atom as [`Raw`](StateAtom::Raw),
//! [`Value`](StateAtom::Value), or [`MaybeValue`](StateAtom::MaybeValue)
//! lets the canonicalizer apply a symmetry transform to a snapshot without
//! knowing anything else about the session.

use crate::{RegContents, RegisterId, Value};

/// One tagged word of session control state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StateAtom {
    /// An opaque word (state discriminant, counter, boolean): never
    /// rewritten by symmetry transforms.
    Raw(u64),
    /// A consensus value (input, preference): rewritten by value swaps.
    Value(Value),
    /// An optional consensus value (e.g. a cached register read).
    MaybeValue(RegContents),
}

/// Collects a session's control-state snapshot.
///
/// Produced atoms are order-significant: the checker compares snapshots as
/// sequences, so a session must always emit its atoms in the same order.
#[derive(Debug, Default)]
pub struct StateSink {
    atoms: Vec<StateAtom>,
    unsupported: bool,
}

impl StateSink {
    /// Creates an empty sink.
    pub fn new() -> StateSink {
        StateSink::default()
    }

    /// Appends an opaque word.
    pub fn push_raw(&mut self, word: u64) {
        self.atoms.push(StateAtom::Raw(word));
    }

    /// Appends a consensus value.
    pub fn push_value(&mut self, value: Value) {
        self.atoms.push(StateAtom::Value(value));
    }

    /// Appends an optional consensus value.
    pub fn push_maybe_value(&mut self, value: RegContents) {
        self.atoms.push(StateAtom::MaybeValue(value));
    }

    /// Marks the snapshot as unsupported (the default
    /// [`Session::snapshot`](crate::Session::snapshot) does this); the
    /// graph checker then rejects the object instead of mis-deduplicating.
    pub fn mark_unsupported(&mut self) {
        self.unsupported = true;
    }

    /// Whether any session marked the snapshot unsupported.
    pub fn is_unsupported(&self) -> bool {
        self.unsupported
    }

    /// The collected atoms, or `None` if the snapshot is unsupported.
    pub fn finish(self) -> Option<Vec<StateAtom>> {
        if self.unsupported {
            None
        } else {
            Some(self.atoms)
        }
    }
}

/// The structural symmetries an object's code respects, as certified by
/// [`DecidingObject::symmetry`](crate::DecidingObject::symmetry).
///
/// A symmetry here is a transformation of whole configurations that
/// commutes with every transition of the object — applying it to a
/// reachable configuration yields another reachable configuration with an
/// isomorphic future. The checker only ever applies transformations that
/// also fix the input vector, so the certificate is about *code
/// structure*, not about the correctness of any particular run: a buggy
/// but structurally symmetric object still has its violations found (on a
/// representative of each symmetry class).
///
/// Register roles must be disjoint between [`pid_blocks`](Self::pid_blocks)
/// and [`swap_pairs`](Self::swap_pairs); a register may additionally appear
/// in [`value_registers`](Self::value_registers) (its *contents* are values
/// while its *identity* permutes).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymmetrySpec {
    /// The object's sessions do not condition behavior on the process id
    /// (beyond indexing registers declared in
    /// [`pid_blocks`](Self::pid_blocks)), so process-id permutations are
    /// symmetries.
    pub pid_oblivious: bool,
    /// The object treats the values 0 and 1 opaquely (up to the register
    /// renaming in [`swap_pairs`](Self::swap_pairs)), so the binary value
    /// swap `0 ↔ 1` is a symmetry when every input is binary.
    pub value_symmetric: bool,
    /// Register blocks `(base, len)` whose *contents* are consensus values
    /// (rewritten by value swaps).
    pub value_registers: Vec<(RegisterId, u64)>,
    /// Register pairs whose *identities* are exchanged by the binary value
    /// swap (e.g. the per-value announcement slots of a quorum ratifier).
    pub swap_pairs: Vec<(RegisterId, RegisterId)>,
    /// Bases of `n`-register blocks indexed by process id, one register
    /// per process; a process-id permutation permutes the block the same
    /// way.
    pub pid_blocks: Vec<RegisterId>,
}

impl SymmetrySpec {
    /// The conservative default: no symmetries claimed.
    pub fn asymmetric() -> SymmetrySpec {
        SymmetrySpec::default()
    }

    /// The identity element for [`merge`](Self::merge): full symmetry with
    /// no registers. Suitable for an empty composition.
    pub fn fully_symmetric() -> SymmetrySpec {
        SymmetrySpec {
            pid_oblivious: true,
            value_symmetric: true,
            ..SymmetrySpec::default()
        }
    }

    /// Combines the certificate of a composed part into `self`: flags are
    /// AND-ed (the composite only has the symmetries every part has) and
    /// register declarations are concatenated.
    pub fn merge(&mut self, part: &SymmetrySpec) {
        self.pid_oblivious &= part.pid_oblivious;
        self.value_symmetric &= part.value_symmetric;
        self.value_registers
            .extend_from_slice(&part.value_registers);
        self.swap_pairs.extend_from_slice(&part.swap_pairs);
        self.pid_blocks.extend_from_slice(&part.pid_blocks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_collects_in_order() {
        let mut sink = StateSink::new();
        sink.push_raw(3);
        sink.push_value(1);
        sink.push_maybe_value(None);
        assert_eq!(
            sink.finish(),
            Some(vec![
                StateAtom::Raw(3),
                StateAtom::Value(1),
                StateAtom::MaybeValue(None)
            ])
        );
    }

    #[test]
    fn unsupported_snapshot_yields_none() {
        let mut sink = StateSink::new();
        sink.push_raw(1);
        sink.mark_unsupported();
        assert!(sink.is_unsupported());
        assert_eq!(sink.finish(), None);
    }

    #[test]
    fn merge_ands_flags_and_concatenates_registers() {
        let mut spec = SymmetrySpec::fully_symmetric();
        spec.value_registers.push((RegisterId(0), 1));
        let part = SymmetrySpec {
            pid_oblivious: true,
            value_symmetric: false,
            value_registers: vec![(RegisterId(5), 2)],
            swap_pairs: vec![(RegisterId(1), RegisterId(2))],
            pid_blocks: vec![RegisterId(7)],
        };
        spec.merge(&part);
        assert!(spec.pid_oblivious);
        assert!(!spec.value_symmetric);
        assert_eq!(
            spec.value_registers,
            vec![(RegisterId(0), 1), (RegisterId(5), 2)]
        );
        assert_eq!(spec.swap_pairs, vec![(RegisterId(1), RegisterId(2))]);
        assert_eq!(spec.pid_blocks, vec![RegisterId(7)]);
    }
}
