//! Checkers for the consensus and weak-consensus correctness properties.
//!
//! The paper (§3) defines a hierarchy of properties on the input/output
//! relation of a deciding object:
//!
//! * **Validity** — every output value equals some process's input.
//! * **Agreement** — all output values are equal.
//! * **Coherence** — if any process outputs `(1, v)`, no process outputs
//!   `(d, v′)` with `v′ ≠ v`.
//! * **Acceptance** (ratifiers) — if all inputs equal `v`, all outputs are
//!   `(1, v)`.
//! * **Full decision** (consensus) — every process outputs `(1, ·)`.
//!
//! These functions take the per-process inputs and the per-process outputs of
//! a completed run and report the first violation found. Probabilistic
//! agreement (conciliators) is a distributional property checked statistically
//! by the experiment harness, not here.

use std::error::Error;
use std::fmt;

use crate::{Decision, ProcessId, Value};

/// A violated correctness property, with the witnessing processes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropertyViolation {
    /// A process output a value that is nobody's input.
    Validity {
        /// The offending process.
        pid: ProcessId,
        /// The invalid output value.
        value: Value,
    },
    /// Two processes output different values.
    Agreement {
        /// First witness process.
        pid_a: ProcessId,
        /// First witness value.
        value_a: Value,
        /// Second witness process.
        pid_b: ProcessId,
        /// Second witness value.
        value_b: Value,
    },
    /// A process decided `v` while another output `v′ ≠ v`.
    Coherence {
        /// The process that decided.
        decider: ProcessId,
        /// The decided value.
        decided: Value,
        /// The conflicting process.
        other: ProcessId,
        /// The conflicting value.
        conflicting: Value,
    },
    /// Inputs were unanimous but some process failed to decide that value.
    Acceptance {
        /// The unanimous input.
        unanimous: Value,
        /// The offending process.
        pid: ProcessId,
        /// Its (wrong or undecided) output.
        output: Decision,
    },
    /// A process failed to decide (decision bit 0) in a full consensus run.
    Undecided {
        /// The offending process.
        pid: ProcessId,
        /// Its output.
        output: Decision,
    },
}

impl PropertyViolation {
    /// The violated property's name, without witness details — useful for
    /// comparing verdicts across checkers that may surface different
    /// witnesses of the same failure.
    pub fn kind(&self) -> &'static str {
        match self {
            PropertyViolation::Validity { .. } => "validity",
            PropertyViolation::Agreement { .. } => "agreement",
            PropertyViolation::Coherence { .. } => "coherence",
            PropertyViolation::Acceptance { .. } => "acceptance",
            PropertyViolation::Undecided { .. } => "undecided",
        }
    }
}

impl fmt::Display for PropertyViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropertyViolation::Validity { pid, value } => {
                write!(
                    f,
                    "validity violated: {pid} output {value}, which is nobody's input"
                )
            }
            PropertyViolation::Agreement {
                pid_a,
                value_a,
                pid_b,
                value_b,
            } => write!(
                f,
                "agreement violated: {pid_a} output {value_a} but {pid_b} output {value_b}"
            ),
            PropertyViolation::Coherence {
                decider,
                decided,
                other,
                conflicting,
            } => write!(
                f,
                "coherence violated: {decider} decided {decided} but {other} output {conflicting}"
            ),
            PropertyViolation::Acceptance {
                unanimous,
                pid,
                output,
            } => write!(
                f,
                "acceptance violated: all inputs were {unanimous} but {pid} output {output}"
            ),
            PropertyViolation::Undecided { pid, output } => {
                write!(f, "process {pid} failed to decide: output {output}")
            }
        }
    }
}

impl Error for PropertyViolation {}

/// Checks validity: every output value is some process's input.
///
/// # Errors
///
/// Returns the first [`PropertyViolation::Validity`] found.
pub fn check_validity(inputs: &[Value], outputs: &[Decision]) -> Result<(), PropertyViolation> {
    for (ix, out) in outputs.iter().enumerate() {
        if !inputs.contains(&out.value()) {
            return Err(PropertyViolation::Validity {
                pid: ProcessId(ix),
                value: out.value(),
            });
        }
    }
    Ok(())
}

/// Checks agreement: all output values are equal.
///
/// # Errors
///
/// Returns the first [`PropertyViolation::Agreement`] found.
pub fn check_agreement(outputs: &[Decision]) -> Result<(), PropertyViolation> {
    let Some(first) = outputs.first() else {
        return Ok(());
    };
    for (ix, out) in outputs.iter().enumerate().skip(1) {
        if out.value() != first.value() {
            return Err(PropertyViolation::Agreement {
                pid_a: ProcessId(0),
                value_a: first.value(),
                pid_b: ProcessId(ix),
                value_b: out.value(),
            });
        }
    }
    Ok(())
}

/// Checks coherence: if any process output `(1, v)`, every output value is
/// `v` (whatever its decision bit).
///
/// # Errors
///
/// Returns the first [`PropertyViolation::Coherence`] found.
pub fn check_coherence(outputs: &[Decision]) -> Result<(), PropertyViolation> {
    let decider = outputs.iter().enumerate().find(|(_, out)| out.is_decided());
    let Some((dix, dout)) = decider else {
        return Ok(());
    };
    for (ix, out) in outputs.iter().enumerate() {
        if out.value() != dout.value() {
            return Err(PropertyViolation::Coherence {
                decider: ProcessId(dix),
                decided: dout.value(),
                other: ProcessId(ix),
                conflicting: out.value(),
            });
        }
    }
    Ok(())
}

/// Checks acceptance (the defining property of ratifiers): if all inputs are
/// the same value `v`, every output must be `(1, v)`.
///
/// Vacuously satisfied when inputs are not unanimous.
///
/// # Errors
///
/// Returns the first [`PropertyViolation::Acceptance`] found.
pub fn check_acceptance(inputs: &[Value], outputs: &[Decision]) -> Result<(), PropertyViolation> {
    let Some(&first) = inputs.first() else {
        return Ok(());
    };
    if inputs.iter().any(|&v| v != first) {
        return Ok(());
    }
    for (ix, out) in outputs.iter().enumerate() {
        if !out.is_decided() || out.value() != first {
            return Err(PropertyViolation::Acceptance {
                unanimous: first,
                pid: ProcessId(ix),
                output: *out,
            });
        }
    }
    Ok(())
}

/// Checks that every process decided (decision bit 1) — required of a full
/// consensus object, on top of validity and agreement.
///
/// # Errors
///
/// Returns the first [`PropertyViolation::Undecided`] found.
pub fn check_all_decided(outputs: &[Decision]) -> Result<(), PropertyViolation> {
    for (ix, out) in outputs.iter().enumerate() {
        if !out.is_decided() {
            return Err(PropertyViolation::Undecided {
                pid: ProcessId(ix),
                output: *out,
            });
        }
    }
    Ok(())
}

/// Checks the full consensus contract: everyone decided, outputs valid and in
/// agreement.
///
/// # Errors
///
/// Returns the first violation found, checking decision, validity, then
/// agreement.
pub fn check_consensus(inputs: &[Value], outputs: &[Decision]) -> Result<(), PropertyViolation> {
    check_all_decided(outputs)?;
    check_validity(inputs, outputs)?;
    check_agreement(outputs)
}

/// Checks the weak-consensus contract (validity + coherence); termination is
/// witnessed by the outputs existing at all.
///
/// # Errors
///
/// Returns the first violation found.
pub fn check_weak_consensus(
    inputs: &[Value],
    outputs: &[Decision],
) -> Result<(), PropertyViolation> {
    check_validity(inputs, outputs)?;
    check_coherence(outputs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(v: Value) -> Decision {
        Decision::decide(v)
    }
    fn c(v: Value) -> Decision {
        Decision::continue_with(v)
    }

    #[test]
    fn validity_accepts_inputs_only() {
        assert!(check_validity(&[1, 2], &[c(1), d(2)]).is_ok());
        let err = check_validity(&[1, 2], &[c(3)]).unwrap_err();
        assert!(matches!(err, PropertyViolation::Validity { value: 3, .. }));
    }

    #[test]
    fn agreement_detects_split() {
        assert!(check_agreement(&[c(1), d(1), c(1)]).is_ok());
        assert!(check_agreement(&[]).is_ok());
        let err = check_agreement(&[c(1), c(2)]).unwrap_err();
        assert!(matches!(
            err,
            PropertyViolation::Agreement { value_b: 2, .. }
        ));
    }

    #[test]
    fn coherence_vacuous_without_decider() {
        assert!(check_coherence(&[c(1), c(2), c(3)]).is_ok());
    }

    #[test]
    fn coherence_binds_non_deciders() {
        assert!(check_coherence(&[d(1), c(1), d(1)]).is_ok());
        let err = check_coherence(&[d(1), c(2)]).unwrap_err();
        assert!(matches!(
            err,
            PropertyViolation::Coherence {
                decided: 1,
                conflicting: 2,
                ..
            }
        ));
    }

    #[test]
    fn acceptance_requires_unanimous_decision() {
        assert!(check_acceptance(&[5, 5], &[d(5), d(5)]).is_ok());
        // Not unanimous: vacuous.
        assert!(check_acceptance(&[5, 6], &[c(9), c(9)]).is_ok());
        // Unanimous but one process only continued.
        let err = check_acceptance(&[5, 5], &[d(5), c(5)]).unwrap_err();
        assert!(matches!(
            err,
            PropertyViolation::Acceptance { unanimous: 5, .. }
        ));
        // Unanimous but wrong value decided.
        assert!(check_acceptance(&[5, 5], &[d(5), d(6)]).is_err());
    }

    #[test]
    fn consensus_checks_everything() {
        assert!(check_consensus(&[1, 2], &[d(2), d(2)]).is_ok());
        assert!(matches!(
            check_consensus(&[1, 2], &[d(2), c(2)]).unwrap_err(),
            PropertyViolation::Undecided { .. }
        ));
        assert!(matches!(
            check_consensus(&[1, 2], &[d(3), d(3)]).unwrap_err(),
            PropertyViolation::Validity { .. }
        ));
        assert!(matches!(
            check_consensus(&[1, 2], &[d(1), d(2)]).unwrap_err(),
            PropertyViolation::Agreement { .. }
        ));
    }

    #[test]
    fn weak_consensus_allows_disagreement_without_decision() {
        assert!(check_weak_consensus(&[1, 2], &[c(1), c(2)]).is_ok());
        assert!(check_weak_consensus(&[1, 2], &[d(1), c(2)]).is_err());
    }

    #[test]
    fn violation_display_is_informative() {
        let v = PropertyViolation::Agreement {
            pid_a: ProcessId(0),
            value_a: 1,
            pid_b: ProcessId(3),
            value_b: 2,
        };
        assert_eq!(
            v.to_string(),
            "agreement violated: p0 output 1 but p3 output 2"
        );
    }
}
