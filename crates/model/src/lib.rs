//! Shared-memory model types for modular consensus.
//!
//! This crate defines the vocabulary of the asynchronous shared-memory model
//! used throughout the `modular-consensus` workspace, following the model of
//! Aspnes, *A Modular Approach to Shared-Memory Consensus, with Applications
//! to the Probabilistic-Write Model* (PODC 2010), §2–§3:
//!
//! * `n` processes communicate by reading and writing atomic multiwriter
//!   [registers](RegisterId); each read returns the last value written.
//! * Each live process has exactly one pending [operation](Op); an execution
//!   is built by repeatedly applying pending operations, in an order chosen by
//!   an adversary scheduler (implemented in `mc-sim`).
//! * Processes have private *local coins* that no adversary can predict;
//!   local computation (including coin flips) is free.
//! * The probabilistic-write model adds [`Op::ProbWrite`]: a write that takes
//!   effect only with some probability, where the adversary must commit to
//!   scheduling the operation before the coin is resolved.
//!
//! Protocols are expressed as [`Session`] state machines: the simulator (or
//! any other driver) repeatedly executes the session's pending operation and
//! feeds back the [`Response`], until the session halts with a
//! [`Decision`] `(d, v)` — the *deciding object* interface of §3.
//!
//! The consensus correctness properties (validity, agreement, coherence,
//! acceptance, probabilistic agreement) are checkable via the
//! [`properties`] module.
//!
//! # Example
//!
//! A trivial deciding object that copies its input to its output without
//! deciding (the "very weak indeed" weak consensus object of §3):
//!
//! ```
//! use mc_model::{Action, Ctx, Decision, Response, Session, Value};
//!
//! struct Copy;
//!
//! impl Session for Copy {
//!     fn begin(&mut self, input: Value, _ctx: &mut Ctx<'_>) -> Action {
//!         Action::Halt(Decision::continue_with(input))
//!     }
//!     fn poll(&mut self, _response: Response, _ctx: &mut Ctx<'_>) -> Action {
//!         unreachable!("Copy performs no shared-memory operations")
//!     }
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod decision;
mod ids;
mod object;
mod op;
pub mod properties;
mod session;
pub mod state;
mod value;

pub use decision::Decision;
pub use ids::{ProcessId, RegisterId};
pub use object::{BlockAlloc, DecidingObject, InstantiateCtx, ObjectSpec, RegisterAlloc};
pub use op::{Op, OpKind, Response};
pub use properties::PropertyViolation;
pub use session::{Action, Ctx, Session};
pub use state::{StateAtom, StateSink, SymmetrySpec};
pub use value::{Probability, ProbabilityError, RegContents, Value};
