//! Deciding objects and their factories.

use std::sync::Arc;

use crate::{ProcessId, RegisterId, Session, SymmetrySpec};

/// Allocates blocks of fresh registers from the engine's address space.
///
/// Register ids are never reused within a run; wait-free one-shot objects
/// never need to reset registers (which would be unsafe under asynchrony).
pub trait RegisterAlloc {
    /// Reserves `len` contiguous registers and returns the id of the first.
    fn alloc_block(&mut self, len: u64) -> RegisterId;
}

/// A trivial bump allocator over the flat register address space.
///
/// The simulator's memory grows on demand, so allocation is just a counter.
#[derive(Debug, Clone, Default)]
pub struct BlockAlloc {
    next: u64,
}

impl BlockAlloc {
    /// Creates an allocator starting at address 0.
    pub fn new() -> BlockAlloc {
        BlockAlloc::default()
    }

    /// Number of registers allocated so far.
    pub fn allocated(&self) -> u64 {
        self.next
    }
}

impl RegisterAlloc for BlockAlloc {
    fn alloc_block(&mut self, len: u64) -> RegisterId {
        let base = self.next;
        self.next = self
            .next
            .checked_add(len)
            .expect("register address space exhausted");
        RegisterId(base)
    }
}

/// Context available while instantiating an object: the number of processes
/// and a register allocator.
pub struct InstantiateCtx<'a> {
    /// Number of processes that may access the object.
    pub n: usize,
    /// Allocator for the object's registers.
    pub alloc: &'a mut dyn RegisterAlloc,
}

impl<'a> InstantiateCtx<'a> {
    /// Creates an instantiation context.
    pub fn new(n: usize, alloc: &'a mut dyn RegisterAlloc) -> InstantiateCtx<'a> {
        InstantiateCtx { n, alloc }
    }
}

/// The shared part of an instantiated one-shot deciding object: its register
/// layout plus any cross-process bookkeeping (e.g. lazy chain caches).
///
/// Each process obtains its own [`Session`] via [`session`]; the object
/// itself holds no per-process state.
///
/// [`session`]: DecidingObject::session
pub trait DecidingObject: Send + Sync {
    /// Creates the per-process state machine for process `pid`.
    fn session(&self, pid: ProcessId) -> Box<dyn Session + Send>;

    /// Certifies which structural symmetries this object's code respects
    /// (see [`SymmetrySpec`]). The default claims none, which disables
    /// symmetry reduction but never soundness.
    ///
    /// Lazily growing objects may return a certificate covering only the
    /// registers instantiated *so far*; the graph checker re-queries after
    /// every step, and registers of uninstantiated stages are untouched by
    /// definition.
    fn symmetry(&self) -> SymmetrySpec {
        SymmetrySpec::asymmetric()
    }
}

/// A factory for deciding objects: allocates registers and builds the shared
/// state for a fresh instance.
///
/// Specs are reusable across runs; each call to
/// [`instantiate`](ObjectSpec::instantiate) produces an independent object.
pub trait ObjectSpec: Send + Sync {
    /// Builds a fresh instance of the object for `ctx.n` processes.
    fn instantiate(&self, ctx: &mut InstantiateCtx<'_>) -> Arc<dyn DecidingObject>;

    /// A short human-readable name for diagnostics and experiment tables.
    fn name(&self) -> String {
        "object".to_string()
    }
}

impl<S: ObjectSpec + ?Sized> ObjectSpec for Arc<S> {
    fn instantiate(&self, ctx: &mut InstantiateCtx<'_>) -> Arc<dyn DecidingObject> {
        (**self).instantiate(ctx)
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_allocation_is_contiguous() {
        let mut a = BlockAlloc::new();
        assert_eq!(a.alloc_block(3), RegisterId(0));
        assert_eq!(a.alloc_block(1), RegisterId(3));
        assert_eq!(a.alloc_block(0), RegisterId(4));
        assert_eq!(a.allocated(), 4);
    }
}
