//! The session state-machine interface that protocols implement.

use rand::Rng;

use crate::{Decision, Op, RegisterAlloc, Response, StateSink, Value};

/// What a session wants to do next.
#[derive(Debug)]
pub enum Action {
    /// Perform a shared-memory operation; the driver will call
    /// [`Session::poll`] with its [`Response`].
    Invoke(Op),
    /// Terminate with the deciding-object output `(d, v)`.
    Halt(Decision),
}

/// Per-step context handed to a session: its private coin source and the
/// register allocator (for lazily instantiated object chains).
///
/// The RNG is the process's *local coin* (§2): free to use, invisible to and
/// unpredictable by every adversary class. Determinism of a whole run follows
/// from each process owning a seeded RNG stream.
pub struct Ctx<'a> {
    /// The process's private coin source.
    pub rng: &'a mut dyn Rng,
    /// Allocator for fresh registers (used by lazily growing compositions).
    pub alloc: &'a mut dyn RegisterAlloc,
}

impl<'a> Ctx<'a> {
    /// Creates a context from its parts.
    pub fn new(rng: &'a mut dyn Rng, alloc: &'a mut dyn RegisterAlloc) -> Ctx<'a> {
        Ctx { rng, alloc }
    }
}

/// A per-process run of a one-shot deciding object, expressed as a state
/// machine.
///
/// The driver calls [`begin`](Session::begin) exactly once with the process's
/// input, then alternates executing the returned operation and calling
/// [`poll`](Session::poll) with its result, until the session returns
/// [`Action::Halt`]. After halting, no further calls are made.
///
/// Sessions perform *at most one operation at a time* — exactly the paper's
/// model where each non-halted process has one pending operation.
pub trait Session {
    /// Starts the session with the process's input value.
    fn begin(&mut self, input: Value, ctx: &mut Ctx<'_>) -> Action;

    /// Continues the session with the result of its last operation.
    fn poll(&mut self, response: Response, ctx: &mut Ctx<'_>) -> Action;

    /// Appends this session's control state to `sink` as tagged atoms, for
    /// graph-based model checking (see [`crate::state`]).
    ///
    /// Two sessions of the same object with equal atom sequences must be
    /// behaviorally identical on every future response. The default marks
    /// the snapshot unsupported, which makes the graph checker reject the
    /// object rather than risk unsound deduplication.
    fn snapshot(&self, sink: &mut StateSink) {
        sink.mark_unsupported();
    }
}

impl Action {
    /// Extracts the halt decision, if this action halts.
    pub fn halted(&self) -> Option<Decision> {
        match self {
            Action::Halt(d) => Some(*d),
            Action::Invoke(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RegisterId;

    #[test]
    fn halted_extracts_decision() {
        let a = Action::Halt(Decision::decide(1));
        assert_eq!(a.halted(), Some(Decision::decide(1)));
        let b = Action::Invoke(Op::Read(RegisterId(0)));
        assert_eq!(b.halted(), None);
    }
}
