//! Identifiers for processes and registers.

use std::fmt;

/// Identifier of a process in an `n`-process system.
///
/// Process ids are dense indices `0..n`; the simulator and the thread runtime
/// both use them to index per-process state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessId(pub usize);

impl ProcessId {
    /// Returns the dense index of this process.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for ProcessId {
    fn from(ix: usize) -> Self {
        ProcessId(ix)
    }
}

/// Identifier of an atomic multiwriter register.
///
/// Registers live in a flat address space owned by the execution engine.
/// Objects obtain contiguous blocks of registers from a
/// [`RegisterAlloc`](crate::RegisterAlloc) at instantiation time and address
/// into a block with [`RegisterId::offset`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RegisterId(pub u64);

impl RegisterId {
    /// Returns the register `delta` slots past this one.
    ///
    /// # Panics
    ///
    /// Panics on address-space overflow (debug builds); the register address
    /// space is `u64`, so this never fires in practice.
    #[inline]
    pub fn offset(self, delta: u64) -> RegisterId {
        RegisterId(self.0 + delta)
    }

    /// Returns the raw address of this register.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for RegisterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_roundtrip() {
        let p = ProcessId::from(7);
        assert_eq!(p.index(), 7);
        assert_eq!(p.to_string(), "p7");
    }

    #[test]
    fn register_offset() {
        let r = RegisterId(10);
        assert_eq!(r.offset(5), RegisterId(15));
        assert_eq!(r.raw(), 10);
        assert_eq!(r.to_string(), "r10");
    }

    #[test]
    fn ordering_is_by_index() {
        assert!(ProcessId(1) < ProcessId(2));
        assert!(RegisterId(1) < RegisterId(2));
    }
}
