//! Shared-memory operations and their results.

use std::fmt;

use crate::{Probability, RegContents, RegisterId, Value};

/// A pending shared-memory operation.
///
/// Each of these costs exactly one unit of work in the paper's step-complexity
/// measures (local computation and coin flips are free). The engine in
/// `mc-sim` applies one pending operation per scheduling step.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Atomic read of a register; returns the last value written (⊥ if none).
    Read(RegisterId),
    /// Atomic write of `value` to `reg`.
    Write {
        /// Target register.
        reg: RegisterId,
        /// Value to store.
        value: Value,
    },
    /// Probabilistic write (§2.1, §5.2): the write to `reg` takes effect only
    /// with probability `prob`, decided by a local coin that is resolved
    /// *after* the scheduler commits to executing this operation.
    ///
    /// Equivalent, under a location-oblivious adversary, to randomly choosing
    /// between a real write and a write to a dummy register. Costs one unit
    /// of work whether or not the write takes effect.
    ProbWrite {
        /// Target register.
        reg: RegisterId,
        /// Value to store if the coin succeeds.
        value: Value,
        /// Probability that the write takes effect.
        prob: Probability,
    },
    /// Atomic collect of a contiguous block of registers in one step.
    ///
    /// Only legal in the *cheap-collect* model (§6.2 item 4); the default
    /// engine configuration rejects it.
    Collect {
        /// First register of the block.
        base: RegisterId,
        /// Number of registers to read.
        len: u64,
    },
}

impl Op {
    /// The kind of this operation, as observable by a value-oblivious
    /// adversary.
    pub fn kind(&self) -> OpKind {
        match self {
            Op::Read(_) => OpKind::Read,
            Op::Write { .. } => OpKind::Write,
            Op::ProbWrite { .. } => OpKind::ProbWrite,
            Op::Collect { .. } => OpKind::Collect,
        }
    }

    /// The register (or base register) this operation touches.
    pub fn register(&self) -> RegisterId {
        match self {
            Op::Read(reg) => *reg,
            Op::Write { reg, .. } => *reg,
            Op::ProbWrite { reg, .. } => *reg,
            Op::Collect { base, .. } => *base,
        }
    }

    /// The value a write-like operation would store, if any.
    pub fn written_value(&self) -> Option<Value> {
        match self {
            Op::Write { value, .. } | Op::ProbWrite { value, .. } => Some(*value),
            Op::Read(_) | Op::Collect { .. } => None,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Read(reg) => write!(f, "read({reg})"),
            Op::Write { reg, value } => write!(f, "write({reg}, {value})"),
            Op::ProbWrite { reg, value, prob } => {
                write!(f, "probwrite({reg}, {value}, p={prob})")
            }
            Op::Collect { base, len } => write!(f, "collect({base}..+{len})"),
        }
    }
}

/// The type of an operation, without its operands.
///
/// This is the granularity at which a value-oblivious adversary can
/// distinguish pending operations (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// A register read.
    Read,
    /// A deterministic register write.
    Write,
    /// A probabilistic register write.
    ProbWrite,
    /// A cheap collect.
    Collect,
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpKind::Read => "read",
            OpKind::Write => "write",
            OpKind::ProbWrite => "probwrite",
            OpKind::Collect => "collect",
        };
        f.write_str(s)
    }
}

/// The result delivered to a session after its pending operation executes.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Result of [`Op::Read`]: the register's contents.
    Read(RegContents),
    /// Acknowledgement of [`Op::Write`].
    Write,
    /// Acknowledgement of [`Op::ProbWrite`].
    ///
    /// `performed` is `Some(outcome)` only when the engine is configured to
    /// let processes detect whether their probabilistic write took effect
    /// (the paper's footnote 2 notes this saves 2 operations); otherwise
    /// `None`.
    ProbWrite {
        /// Whether the write took effect, if detectable.
        performed: Option<bool>,
    },
    /// Result of [`Op::Collect`]: contents of each register in the block.
    Collect(Vec<RegContents>),
}

impl Response {
    /// Extracts the contents from a read response.
    ///
    /// # Panics
    ///
    /// Panics if this is not a [`Response::Read`]; sessions call this only
    /// when their own state machine guarantees the pending op was a read.
    #[track_caller]
    pub fn expect_read(self) -> RegContents {
        match self {
            Response::Read(contents) => contents,
            other => panic!("expected read response, got {other:?}"),
        }
    }

    /// Extracts the block contents from a collect response.
    ///
    /// # Panics
    ///
    /// Panics if this is not a [`Response::Collect`].
    #[track_caller]
    pub fn expect_collect(self) -> Vec<RegContents> {
        match self {
            Response::Collect(contents) => contents,
            other => panic!("expected collect response, got {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_registers() {
        let r = RegisterId(3);
        assert_eq!(Op::Read(r).kind(), OpKind::Read);
        assert_eq!(Op::Read(r).register(), r);
        let w = Op::Write { reg: r, value: 9 };
        assert_eq!(w.kind(), OpKind::Write);
        assert_eq!(w.written_value(), Some(9));
        let pw = Op::ProbWrite {
            reg: r,
            value: 4,
            prob: Probability::clamped(0.5),
        };
        assert_eq!(pw.kind(), OpKind::ProbWrite);
        assert_eq!(pw.written_value(), Some(4));
        let c = Op::Collect { base: r, len: 8 };
        assert_eq!(c.kind(), OpKind::Collect);
        assert_eq!(c.written_value(), None);
    }

    #[test]
    fn display_forms() {
        let r = RegisterId(0);
        assert_eq!(Op::Read(r).to_string(), "read(r0)");
        assert_eq!(Op::Write { reg: r, value: 1 }.to_string(), "write(r0, 1)");
        assert_eq!(OpKind::ProbWrite.to_string(), "probwrite");
    }

    #[test]
    fn expect_read_extracts() {
        assert_eq!(Response::Read(Some(5)).expect_read(), Some(5));
    }

    #[test]
    #[should_panic(expected = "expected read response")]
    fn expect_read_panics_on_mismatch() {
        Response::Write.expect_read();
    }

    #[test]
    fn expect_collect_extracts() {
        let resp = Response::Collect(vec![None, Some(1)]);
        assert_eq!(resp.expect_collect(), vec![None, Some(1)]);
    }
}
