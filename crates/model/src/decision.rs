//! Outputs of deciding objects.

use std::fmt;

use crate::Value;

/// The annotated output `(d, v)` of a deciding object (§3).
///
/// A deciding object returns its value together with a *decision bit*:
/// `(1, v)` means "decide `v` and terminate immediately"; `(0, v)` means
/// "continue to the next object in the composition, using `v` as input".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Decision {
    decided: bool,
    value: Value,
}

impl Decision {
    /// Constructs the deciding output `(1, value)`.
    pub fn decide(value: Value) -> Decision {
        Decision {
            decided: true,
            value,
        }
    }

    /// Constructs the non-deciding output `(0, value)`.
    pub fn continue_with(value: Value) -> Decision {
        Decision {
            decided: false,
            value,
        }
    }

    /// Returns the decision bit: true iff the output is `(1, v)`.
    #[inline]
    pub fn is_decided(self) -> bool {
        self.decided
    }

    /// Returns the value component `v`.
    #[inline]
    pub fn value(self) -> Value {
        self.value
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", u8::from(self.decided), self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let d = Decision::decide(3);
        assert!(d.is_decided());
        assert_eq!(d.value(), 3);
        let c = Decision::continue_with(4);
        assert!(!c.is_decided());
        assert_eq!(c.value(), 4);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Decision::decide(7).to_string(), "(1, 7)");
        assert_eq!(Decision::continue_with(0).to_string(), "(0, 0)");
    }
}
