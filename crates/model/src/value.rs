//! Values, register contents, and probabilities.

use std::error::Error;
use std::fmt;

/// A decision value from the input alphabet Σ.
///
/// The paper's algorithms operate on an abstract value set Σ of size `m`;
/// we represent values as machine words `0..m`. Typed front-ends (see
/// `mc-runtime`) map user types onto this encoding.
pub type Value = u64;

/// The contents of an atomic register: `None` is the initial null value ⊥.
///
/// Every algorithm in the paper stores either ⊥, a bit, or a value from Σ in
/// each register, so a single uniform register type suffices.
pub type RegContents = Option<Value>;

/// A probability in `[0, 1]`, validated at construction.
///
/// Used for the coin of a probabilistic write ([`Op::ProbWrite`]) and for
/// local coin flips. The newtype prevents accidentally passing raw odds or
/// percentages.
///
/// [`Op::ProbWrite`]: crate::Op::ProbWrite
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Probability(f64);

/// Error returned when constructing a [`Probability`] outside `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbabilityError(f64);

impl fmt::Display for ProbabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "probability {} is not in [0, 1]", self.0)
    }
}

impl Error for ProbabilityError {}

impl Probability {
    /// The never-happens probability.
    pub const ZERO: Probability = Probability(0.0);
    /// The always-happens probability.
    pub const ONE: Probability = Probability(1.0);

    /// Creates a probability, rejecting values outside `[0, 1]` (including
    /// NaN).
    ///
    /// # Errors
    ///
    /// Returns [`ProbabilityError`] if `p` is NaN or outside `[0, 1]`.
    ///
    /// # Example
    ///
    /// ```
    /// use mc_model::Probability;
    /// # fn main() -> Result<(), mc_model::ProbabilityError> {
    /// let half = Probability::new(0.5)?;
    /// assert_eq!(half.get(), 0.5);
    /// assert!(Probability::new(1.5).is_err());
    /// # Ok(())
    /// # }
    /// ```
    pub fn new(p: f64) -> Result<Probability, ProbabilityError> {
        if p.is_nan() || !(0.0..=1.0).contains(&p) {
            Err(ProbabilityError(p))
        } else {
            Ok(Probability(p))
        }
    }

    /// Creates a probability by clamping `p` into `[0, 1]` (NaN becomes 0).
    ///
    /// This is the natural constructor for write-probability schedules like
    /// the paper's `2^k / n`, which intentionally saturate at 1.
    pub fn clamped(p: f64) -> Probability {
        if p.is_nan() {
            Probability(0.0)
        } else {
            Probability(p.clamp(0.0, 1.0))
        }
    }

    /// Returns the probability as an `f64` in `[0, 1]`.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Returns true if this probability is exactly 1.
    #[inline]
    pub fn is_certain(self) -> bool {
        self.0 >= 1.0
    }
}

impl fmt::Display for Probability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_accepts_unit_interval() {
        assert!(Probability::new(0.0).is_ok());
        assert!(Probability::new(1.0).is_ok());
        assert!(Probability::new(0.25).is_ok());
    }

    #[test]
    fn new_rejects_out_of_range() {
        assert!(Probability::new(-0.1).is_err());
        assert!(Probability::new(1.01).is_err());
        assert!(Probability::new(f64::NAN).is_err());
    }

    #[test]
    fn clamped_saturates() {
        assert_eq!(Probability::clamped(3.0), Probability::ONE);
        assert_eq!(Probability::clamped(-3.0), Probability::ZERO);
        assert_eq!(Probability::clamped(f64::NAN), Probability::ZERO);
        assert_eq!(Probability::clamped(0.5).get(), 0.5);
    }

    #[test]
    fn certainty() {
        assert!(Probability::ONE.is_certain());
        assert!(!Probability::clamped(0.999).is_certain());
    }

    #[test]
    fn error_display() {
        let err = Probability::new(2.0).unwrap_err();
        assert_eq!(err.to_string(), "probability 2 is not in [0, 1]");
    }
}
