//! # modular-consensus
//!
//! A complete Rust implementation of Aspnes, *A Modular Approach to
//! Shared-Memory Consensus, with Applications to the Probabilistic-Write
//! Model* (PODC 2010).
//!
//! The paper decomposes randomized wait-free consensus into **conciliators**
//! (objects that *produce* agreement with constant probability) and
//! **ratifiers** (deterministic objects that *detect* agreement), composed
//! in an alternating sequence `R₋₁; R₀; C₁; R₁; C₂; R₂; …`. In the
//! probabilistic-write model this yields consensus with `O(log n)` expected
//! individual work and `O(n log m)` expected total work — the first
//! weak-adversary protocol with optimal total work.
//!
//! This crate is a facade over the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`model`] | `mc-model` | the shared-memory model: registers, operations, sessions, correctness properties |
//! | [`sim`] | `mc-sim` | deterministic simulator with the adversary hierarchy of §2.1 |
//! | [`quorums`] | `mc-quorums` | cross-intersecting quorum systems (§6.2, Bollobás optimality) |
//! | [`core`] | `mc-core` | conciliators, ratifiers, coins, composition, the consensus constructions of §4 |
//! | [`runtime`] | `mc-runtime` | the same algorithms on real threads and std atomics |
//! | [`analysis`] | `mc-analysis` | statistics, fits, tables, and the paper's closed-form bounds |
//! | [`check`] | `mc-check` | exhaustive bounded model checker: every schedule, every coin |
//! | [`telemetry`] | `mc-telemetry` | lock-free counters, work/round histograms, JSONL event export |
//! | [`lab`] | `mc-lab` | deterministic interleaving lab: the real-thread runtime under seeded adversarial schedulers, with cross-substrate conformance |
//! | [`store`] | `mc-store` | linearizable replicated state machine and KV store over repeated consensus (Corollary 4 as a service) |
//!
//! # Two ways to run consensus
//!
//! **In the model** (exact operation counts, adversarial schedulers):
//!
//! ```
//! use modular_consensus::core::protocol::ConsensusBuilder;
//! use modular_consensus::sim::{adversary::RandomScheduler, harness, EngineConfig};
//!
//! let spec = ConsensusBuilder::multivalued(5).build();
//! let inputs = [4, 1, 3, 3, 0, 2];
//! let outcome = harness::run_object(
//!     &spec,
//!     &inputs,
//!     &mut RandomScheduler::new(7),
//!     42,
//!     &EngineConfig::default(),
//! )
//! .unwrap();
//! modular_consensus::model::properties::check_consensus(&inputs, &outcome.outputs).unwrap();
//! println!("agreed on {} in {} ops", outcome.values()[0], outcome.metrics.total_work());
//! ```
//!
//! **On real threads** (practical runtime):
//!
//! ```
//! use modular_consensus::runtime::Consensus;
//! use rand::{rngs::SmallRng, SeedableRng};
//! use std::sync::Arc;
//!
//! let c = Arc::new(Consensus::builder().n(3).values(100).build());
//! let handles: Vec<_> = (0..3u64)
//!     .map(|t| {
//!         let c = Arc::clone(&c);
//!         std::thread::spawn(move || c.decide(t * 7, &mut SmallRng::seed_from_u64(t)))
//!     })
//!     .collect();
//! let decisions: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
//! assert!(decisions.windows(2).all(|w| w[0] == w[1]));
//! ```
//!
//! See `examples/` for runnable scenarios and `EXPERIMENTS.md` for the
//! reproduction of every quantitative claim in the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mc_analysis as analysis;
pub use mc_check as check;
pub use mc_core as core;
pub use mc_lab as lab;
pub use mc_model as model;
pub use mc_quorums as quorums;
pub use mc_runtime as runtime;
pub use mc_sim as sim;
pub use mc_store as store;
pub use mc_telemetry as telemetry;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use mc_core::protocol::ConsensusBuilder;
    pub use mc_core::{
        BoundedChain, Chain, ChainProbe, CoinConciliator, CollectRatifier, ConciliatorCoin,
        FirstMoverConciliator, LazyChain, Ratifier, VotingSharedCoin, WriteSchedule,
    };
    pub use mc_lab::{
        check_chaos_conformance, check_coin_conformance, check_conformance,
        check_conformance_with_plan, check_recycled_conformance, check_service_conformance,
        check_store_conformance, Conformance, Lab, Protocol as LabProtocol,
    };
    pub use mc_model::{properties, Decision, ObjectSpec, ProcessId, Value};
    pub use mc_runtime::{
        AdaptiveConsensus, AdaptiveOptions, BackpressurePolicy, BoundedConsensus, ChaosPlan,
        CircuitOptions, CoinKind, ConciliatorChoice, Consensus, ConsensusEngine, ConsensusService,
        DecisionHandle, Election, EngineBuilder, EngineError, EngineOptions, FaultPlan,
        FaultyMemory, LeaderFallback, LocalCoin, ReplicatedLog, ResetScope, RetryPolicy,
        RingHealth, RuntimeTelemetry, ServiceBuilder, ServiceOptions, SubmitOptions,
        SupervisorOptions, TestAndSet, TypedConsensus, ValueCode, VotingCoin,
    };
    pub use mc_sim::{adversary, harness, observe, sched, EngineConfig};
    pub use mc_store::{
        CommandHandle, KvCommand, KvResponse, KvStore, ReplicatedStore, StateMachine, StoreBuilder,
        StoreClient, StoreError, StoreOptions,
    };
    pub use mc_telemetry::{
        AggregatingRecorder, JsonlRecorder, NoopRecorder, Recorder, TelemetryEvent,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_exposes_all_crates() {
        // Touch one symbol per crate so a broken re-export fails to compile.
        let _ = crate::analysis::theory::impatient_agreement_lower_bound();
        let _ = crate::check::CheckConfig::default();
        let _ = crate::core::Ratifier::binary();
        let _ = crate::lab::Protocol::Binary;
        let _ = crate::model::Decision::decide(0);
        let _ = crate::quorums::binomial(4, 2);
        let _ = crate::runtime::AtomicRegister::new();
        let _ = crate::sim::EngineConfig::default();
        let _ = crate::store::KvStore::new();
        let _ = crate::telemetry::NoopRecorder;
    }
}
