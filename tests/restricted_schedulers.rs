//! §4.2: consensus with ratifiers only, under restricted schedulers.

use std::sync::Arc;

use modular_consensus::core::protocol::ratifier_only;
use modular_consensus::prelude::*;

#[test]
fn ratifier_only_with_priority_scheduling_for_many_configs() {
    for n in [2usize, 3, 5, 9] {
        for m in [2u64, 4] {
            let spec = ratifier_only(Arc::new(Ratifier::binomial(m)));
            for seed in 0..5 {
                let inputs = harness::inputs::random(n, m, seed);
                let out = harness::run_object(
                    &spec,
                    &inputs,
                    &mut sched::PriorityScheduler::shuffled(n, seed),
                    seed,
                    &EngineConfig::default(),
                )
                .unwrap();
                properties::check_consensus(&inputs, &out.outputs).unwrap();
            }
        }
    }
}

#[test]
fn highest_priority_process_wins_under_priority_scheduling() {
    // §4.2: "the highest-priority process to execute the protocol will
    // eventually overtake all other processes" — with descending
    // priorities, p0 runs first and alone, so its input is decided.
    let spec = ratifier_only(Arc::new(Ratifier::binary()));
    let inputs = [1u64, 0, 0, 0];
    let out = harness::run_object(
        &spec,
        &inputs,
        &mut sched::PriorityScheduler::descending(4),
        0,
        &EngineConfig::default(),
    )
    .unwrap();
    assert!(out.outputs.iter().all(|d| d.is_decided() && d.value() == 1));
}

#[test]
fn ratifier_only_with_noisy_scheduler_terminates() {
    // The accumulating timing noise eventually pushes some process ahead;
    // binary ratifiers then decide (lean-consensus behaviour, §4.2).
    for seed in 0..8 {
        let n = 3;
        let inputs = harness::inputs::alternating(n, 2);
        let out = harness::run_object(
            &ratifier_only(Arc::new(Ratifier::binary())),
            &inputs,
            &mut sched::NoisyScheduler::new(n, 0.6, seed),
            seed,
            &EngineConfig::default(),
        )
        .unwrap();
        properties::check_consensus(&inputs, &out.outputs).unwrap();
    }
}

#[test]
fn noisier_schedulers_terminate_faster() {
    // More noise -> faster divergence -> fewer ratifier rounds. Compare
    // mean total work at two noise levels.
    let spec = ratifier_only(Arc::new(Ratifier::binary()));
    let mean_work = |sigma: f64| {
        let stats = harness::run_trials(
            &spec,
            40,
            31,
            &EngineConfig::default(),
            |_| harness::inputs::alternating(2, 2),
            |seed| Box::new(sched::NoisyScheduler::new(2, sigma, seed)),
        )
        .unwrap();
        stats.mean_total_work()
    };
    let quiet = mean_work(0.05);
    let loud = mean_work(0.9);
    assert!(
        loud < quiet,
        "more noise should terminate faster: sigma=0.05 -> {quiet}, sigma=0.9 -> {loud}"
    );
}

#[test]
fn ratifier_only_terminates_under_quantum_scheduling() {
    // §2.1 cites quantum-based scheduling restrictions; a quantum covering
    // a whole binary-ratifier pass (4 ops) lets the first process complete
    // a fresh ratifier alone, so the chain decides.
    let spec = ratifier_only(Arc::new(Ratifier::binary()));
    for n in [2usize, 4, 6] {
        for quantum in [4u64, 8, 16] {
            let inputs = harness::inputs::alternating(n, 2);
            let out = harness::run_object(
                &spec,
                &inputs,
                &mut sched::QuantumScheduler::new(quantum),
                1,
                &EngineConfig::default(),
            )
            .unwrap_or_else(|e| panic!("n={n} q={quantum}: {e}"));
            properties::check_consensus(&inputs, &out.outputs)
                .unwrap_or_else(|e| panic!("n={n} q={quantum}: {e}"));
        }
    }
}

#[test]
fn tiny_quanta_still_livelock_ratifier_only_chains() {
    // quantum = 1 is lockstep round-robin: the §4.2 restriction genuinely
    // needs the quantum to cover a ratifier pass.
    let spec = ratifier_only(Arc::new(Ratifier::binary()));
    let err = harness::run_object(
        &spec,
        &[0, 1],
        &mut sched::QuantumScheduler::new(1),
        0,
        &EngineConfig::default().with_max_steps(20_000),
    )
    .unwrap_err();
    assert!(matches!(
        err,
        modular_consensus::sim::RunError::StepLimitExceeded { .. }
    ));
}

#[test]
fn lockstep_schedules_livelock_ratifier_only_chains() {
    // Perfectly fair round-robin keeps conflicting processes in lockstep
    // forever: the chain must hit the step limit (this is why conciliators
    // exist).
    let spec = ratifier_only(Arc::new(Ratifier::binary()));
    let err = harness::run_object(
        &spec,
        &[0, 1],
        &mut adversary::RoundRobin::new(),
        0,
        &EngineConfig::default().with_max_steps(20_000),
    )
    .unwrap_err();
    assert!(matches!(
        err,
        modular_consensus::sim::RunError::StepLimitExceeded { .. }
    ));
}
