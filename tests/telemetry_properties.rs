//! Property-based tests of the telemetry layer: work-metric invariants,
//! exact reconciliation between the simulator's native `WorkMetrics` and
//! the replayed `Recorder` event stream, and well-formedness of the JSONL
//! export.

use modular_consensus::prelude::*;
use modular_consensus::sim::observe;
use modular_consensus::telemetry::{json, AggregatingRecorder, JsonlRecorder};
use proptest::prelude::*;

/// One seeded consensus run with trace recording on.
fn traced_run(n: usize, m: u64, seed: u64) -> modular_consensus::sim::harness::RunOutcome {
    let spec = ConsensusBuilder::multivalued(m).build();
    let ins = harness::inputs::random(n, m, seed ^ 0x7E1E);
    harness::run_object(
        &spec,
        &ins,
        &mut adversary::RandomScheduler::new(seed),
        seed,
        &EngineConfig::default().with_trace(),
    )
    .expect("consensus run terminates")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Total work dominates individual work: the max over processes can
    /// never exceed the sum over processes.
    #[test]
    fn total_work_dominates_individual_work(n in 1usize..8, m in 2u64..5, seed in 0u64..50_000) {
        let out = traced_run(n, m, seed);
        prop_assert!(out.metrics.total_work() >= out.metrics.individual_work());
        // And both decompose over the per-process vector.
        prop_assert_eq!(
            out.metrics.total_work(),
            out.metrics.per_process.iter().sum::<u64>()
        );
        prop_assert_eq!(
            out.metrics.individual_work(),
            out.metrics.per_process.iter().copied().max().unwrap_or(0)
        );
    }

    /// A probabilistic write can land at most once per attempt.
    #[test]
    fn prob_writes_performed_bounded_by_attempted(n in 1usize..8, m in 2u64..5, seed in 0u64..50_000) {
        let out = traced_run(n, m, seed);
        prop_assert!(out.metrics.prob_writes_performed <= out.metrics.prob_writes_attempted);
    }

    /// The event stream replayed from a seeded run's trace reconciles
    /// exactly with the engine's own work accounting: same total, same
    /// per-process counts, same probabilistic-write tallies.
    #[test]
    fn event_stream_reconciles_with_work_metrics(n in 1usize..8, m in 2u64..5, seed in 0u64..50_000) {
        let out = traced_run(n, m, seed);
        let agg = AggregatingRecorder::new();
        let emitted = observe::export_run(seed, out.trace.as_ref(), &out.metrics, &agg);
        // One op event per trace step (the work summary is extra).
        prop_assert_eq!(emitted, out.metrics.total_work());
        prop_assert_eq!(agg.ops(), out.metrics.total_work());
        prop_assert_eq!(agg.individual_ops(), out.metrics.individual_work());
        prop_assert_eq!(agg.per_process_ops(), out.metrics.per_process.clone());
        prop_assert_eq!(agg.prob_writes_attempted(), out.metrics.prob_writes_attempted);
        prop_assert_eq!(agg.prob_writes_performed(), out.metrics.prob_writes_performed);
    }

    /// Every line a `JsonlRecorder` writes is a complete, valid JSON
    /// document, and the `seq` stamps are consecutive from 0.
    #[test]
    fn jsonl_output_is_valid_json_per_line(n in 1usize..7, m in 2u64..4, seed in 0u64..20_000) {
        let out = traced_run(n, m, seed);
        let (recorder, buf) = JsonlRecorder::in_memory();
        observe::export_run(seed, out.trace.as_ref(), &out.metrics, &recorder);
        let bytes = buf.lock().unwrap().clone();
        let text = String::from_utf8(bytes).expect("JSONL is UTF-8");
        let lines: Vec<&str> = text.lines().collect();
        prop_assert_eq!(lines.len() as u64, recorder.events_written());
        for (ix, line) in lines.iter().enumerate() {
            json::validate(line)
                .unwrap_or_else(|e| panic!("line {ix} is not valid JSON ({e}): {line}"));
            let stamp = format!("\"seq\":{ix}");
            prop_assert!(line.contains(&stamp), "line {} lacks {}: {}", ix, stamp, line);
        }
        // The last line is the work summary carrying the run's seed.
        let last = lines.last().expect("at least one event");
        prop_assert!(last.contains("\"ev\":\"work_summary\""));
        let seed_stamp = format!("\"seed\":{seed}");
        prop_assert!(last.contains(&seed_stamp));
    }

    /// The lab substrate feeds the same export pipeline: a real-thread run
    /// under the deterministic scheduler produces a trace and metrics whose
    /// replayed event stream — including the `work_summary` event —
    /// reconciles exactly with the lab's own accounting, just as sim runs
    /// do. (The lab emits sim-vocabulary traces precisely so this holds.)
    #[test]
    fn lab_event_stream_reconciles_with_work_metrics(n in 1usize..6, seed in 0u64..50_000) {
        use modular_consensus::lab::Lab;
        use modular_consensus::runtime::Consensus;

        let lab = Lab::new(n, Box::new(adversary::RandomScheduler::new(seed)), &[], 100_000);
        let consensus = Consensus::builder().n(n).memory(lab.memory()).build();
        let report = lab
            .run(seed, |pid, rng| consensus.decide(pid as u64 % 2, rng))
            .expect("lab run terminates");

        let agg = AggregatingRecorder::new();
        let emitted = observe::export_run(seed, Some(&report.trace), &report.metrics, &agg);
        prop_assert_eq!(emitted, report.metrics.total_work());
        prop_assert_eq!(agg.ops(), report.metrics.total_work());
        prop_assert_eq!(agg.individual_ops(), report.metrics.individual_work());
        prop_assert_eq!(agg.per_process_ops(), report.metrics.per_process.clone());
        prop_assert_eq!(agg.prob_writes_attempted(), report.metrics.prob_writes_attempted);
        prop_assert_eq!(agg.prob_writes_performed(), report.metrics.prob_writes_performed);
        // The trace itself accounts for every counted operation.
        prop_assert_eq!(report.trace.len() as u64, report.metrics.total_work());
    }

    /// And the lab's `work_summary` JSONL line is well-formed and carries
    /// the run seed — the contract downstream dashboards rely on, now
    /// guaranteed for both execution substrates.
    #[test]
    fn lab_work_summary_exports_valid_jsonl(n in 1usize..5, seed in 0u64..20_000) {
        use modular_consensus::lab::Lab;
        use modular_consensus::runtime::Consensus;

        let lab = Lab::new(n, Box::new(adversary::RandomScheduler::new(seed)), &[], 100_000);
        let consensus = Consensus::builder().n(n).memory(lab.memory()).build();
        let report = lab
            .run(seed, |pid, rng| consensus.decide(pid as u64 % 2, rng))
            .expect("lab run terminates");

        let (recorder, buf) = JsonlRecorder::in_memory();
        observe::export_run(seed, Some(&report.trace), &report.metrics, &recorder);
        let bytes = buf.lock().unwrap().clone();
        let text = String::from_utf8(bytes).expect("JSONL is UTF-8");
        let last = text.lines().last().expect("at least one event");
        json::validate(last).unwrap_or_else(|e| panic!("invalid JSON ({e}): {last}"));
        prop_assert!(last.contains("\"ev\":\"work_summary\""));
        let seed_stamp = format!("\"seed\":{seed}");
        prop_assert!(last.contains(&seed_stamp));
    }
}

/// One bounded-consensus run over fault-injected lab memory, returning the
/// pieces every reconciliation check needs: the fault layer's own counters,
/// the runtime telemetry, and whatever the recorder accumulated.
fn faulted_bounded_run(
    n: usize,
    seed: u64,
    recorder: std::sync::Arc<dyn Recorder>,
) -> (
    modular_consensus::runtime::FaultCounts,
    u64,      // telemetry.faults_injected()
    u64,      // telemetry.fallbacks_taken()
    [u64; 4], // per-class telemetry counters
) {
    use modular_consensus::lab::Lab;
    use modular_consensus::quorums::BinaryScheme;
    use modular_consensus::runtime::ConsensusOptions;
    use std::sync::Arc;

    let lab = Lab::new(
        n,
        Box::new(adversary::RandomScheduler::new(seed)),
        &[],
        400_000,
    );
    let plan = FaultPlan::seeded(seed)
        .lost_prob_writes(0.3)
        .stale_reads(0.2)
        .delayed_writes(0.2, 3)
        .register_resets(0.05);
    let memory = FaultyMemory::new(lab.memory(), plan);
    let options = ConsensusOptions {
        n,
        scheme: Arc::new(BinaryScheme::new()),
        schedule: WriteSchedule::impatient(),
        fast_path: true,
        max_conciliator_rounds: Some(2),
    };
    let consensus = BoundedConsensus::with_recorder_in(memory.clone(), options, recorder);
    let memory = memory.observed_by(Arc::clone(consensus.telemetry_handle()));
    lab.run(seed, |pid, rng| consensus.decide(pid, pid as u64 % 2, rng))
        .expect("bounded run over faulty memory terminates");
    let telemetry = consensus.telemetry();
    (
        memory.fault_counts(),
        telemetry.faults_injected(),
        telemetry.fallbacks_taken(),
        [
            telemetry.lost_prob_writes(),
            telemetry.stale_reads(),
            telemetry.delayed_commits(),
            telemetry.register_resets(),
        ],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every fault the injection layer delivers is triple-accounted: the
    /// layer's own counters, the runtime telemetry snapshot, and the
    /// recorder's aggregated event stream agree — in total, per class, and
    /// on the fallback tally.
    #[test]
    fn fault_events_reconcile_across_all_three_ledgers(n in 2usize..5, seed in 0u64..20_000) {
        use std::sync::Arc;

        let agg = Arc::new(AggregatingRecorder::new());
        let (counts, tel_total, tel_fallbacks, per_class) =
            faulted_bounded_run(n, seed, Arc::clone(&agg) as Arc<dyn Recorder>);

        prop_assert_eq!(tel_total, counts.total());
        prop_assert_eq!(per_class[0], counts.lost_prob_writes);
        prop_assert_eq!(per_class[1], counts.stale_reads);
        prop_assert_eq!(per_class[2], counts.delayed_commits);
        prop_assert_eq!(per_class[3], counts.register_resets);
        prop_assert_eq!(agg.faults_injected(), counts.total());
        prop_assert_eq!(agg.fallbacks_taken(), tel_fallbacks);
    }

    /// The JSONL export carries one well-formed `fault_injected` line per
    /// delivered fault and one `fallback_taken` line per fallback — the
    /// event stream neither drops nor duplicates faults.
    #[test]
    fn fault_events_export_one_jsonl_line_each(n in 2usize..5, seed in 0u64..20_000) {
        use std::sync::Arc;

        let (recorder, buf) = JsonlRecorder::in_memory();
        let (counts, _, tel_fallbacks, _) =
            faulted_bounded_run(n, seed, Arc::new(recorder) as Arc<dyn Recorder>);

        let bytes = buf.lock().unwrap().clone();
        let text = String::from_utf8(bytes).expect("JSONL is UTF-8");
        let mut fault_lines = 0u64;
        let mut fallback_lines = 0u64;
        for (ix, line) in text.lines().enumerate() {
            json::validate(line)
                .unwrap_or_else(|e| panic!("line {ix} is not valid JSON ({e}): {line}"));
            if line.contains("\"ev\":\"fault_injected\"") {
                fault_lines += 1;
            }
            if line.contains("\"ev\":\"fallback_taken\"") {
                fallback_lines += 1;
            }
        }
        prop_assert_eq!(fault_lines, counts.total());
        prop_assert_eq!(fallback_lines, tel_fallbacks);
    }
}
