//! Property-based tests of the telemetry layer: work-metric invariants,
//! exact reconciliation between the simulator's native `WorkMetrics` and
//! the replayed `Recorder` event stream, and well-formedness of the JSONL
//! export.

use modular_consensus::prelude::*;
use modular_consensus::sim::observe;
use modular_consensus::telemetry::{json, AggregatingRecorder, JsonlRecorder};
use proptest::prelude::*;

/// One seeded consensus run with trace recording on.
fn traced_run(n: usize, m: u64, seed: u64) -> modular_consensus::sim::harness::RunOutcome {
    let spec = ConsensusBuilder::multivalued(m).build();
    let ins = harness::inputs::random(n, m, seed ^ 0x7E1E);
    harness::run_object(
        &spec,
        &ins,
        &mut adversary::RandomScheduler::new(seed),
        seed,
        &EngineConfig::default().with_trace(),
    )
    .expect("consensus run terminates")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Total work dominates individual work: the max over processes can
    /// never exceed the sum over processes.
    #[test]
    fn total_work_dominates_individual_work(n in 1usize..8, m in 2u64..5, seed in 0u64..50_000) {
        let out = traced_run(n, m, seed);
        prop_assert!(out.metrics.total_work() >= out.metrics.individual_work());
        // And both decompose over the per-process vector.
        prop_assert_eq!(
            out.metrics.total_work(),
            out.metrics.per_process.iter().sum::<u64>()
        );
        prop_assert_eq!(
            out.metrics.individual_work(),
            out.metrics.per_process.iter().copied().max().unwrap_or(0)
        );
    }

    /// A probabilistic write can land at most once per attempt.
    #[test]
    fn prob_writes_performed_bounded_by_attempted(n in 1usize..8, m in 2u64..5, seed in 0u64..50_000) {
        let out = traced_run(n, m, seed);
        prop_assert!(out.metrics.prob_writes_performed <= out.metrics.prob_writes_attempted);
    }

    /// The event stream replayed from a seeded run's trace reconciles
    /// exactly with the engine's own work accounting: same total, same
    /// per-process counts, same probabilistic-write tallies.
    #[test]
    fn event_stream_reconciles_with_work_metrics(n in 1usize..8, m in 2u64..5, seed in 0u64..50_000) {
        let out = traced_run(n, m, seed);
        let agg = AggregatingRecorder::new();
        let emitted = observe::export_run(seed, out.trace.as_ref(), &out.metrics, &agg);
        // One op event per trace step (the work summary is extra).
        prop_assert_eq!(emitted, out.metrics.total_work());
        prop_assert_eq!(agg.ops(), out.metrics.total_work());
        prop_assert_eq!(agg.individual_ops(), out.metrics.individual_work());
        prop_assert_eq!(agg.per_process_ops(), out.metrics.per_process.clone());
        prop_assert_eq!(agg.prob_writes_attempted(), out.metrics.prob_writes_attempted);
        prop_assert_eq!(agg.prob_writes_performed(), out.metrics.prob_writes_performed);
    }

    /// Every line a `JsonlRecorder` writes is a complete, valid JSON
    /// document, and the `seq` stamps are consecutive from 0.
    #[test]
    fn jsonl_output_is_valid_json_per_line(n in 1usize..7, m in 2u64..4, seed in 0u64..20_000) {
        let out = traced_run(n, m, seed);
        let (recorder, buf) = JsonlRecorder::in_memory();
        observe::export_run(seed, out.trace.as_ref(), &out.metrics, &recorder);
        let bytes = buf.lock().unwrap().clone();
        let text = String::from_utf8(bytes).expect("JSONL is UTF-8");
        let lines: Vec<&str> = text.lines().collect();
        prop_assert_eq!(lines.len() as u64, recorder.events_written());
        for (ix, line) in lines.iter().enumerate() {
            json::validate(line)
                .unwrap_or_else(|e| panic!("line {ix} is not valid JSON ({e}): {line}"));
            let stamp = format!("\"seq\":{ix}");
            prop_assert!(line.contains(&stamp), "line {} lacks {}: {}", ix, stamp, line);
        }
        // The last line is the work summary carrying the run's seed.
        let last = lines.last().expect("at least one event");
        prop_assert!(last.contains("\"ev\":\"work_summary\""));
        let seed_stamp = format!("\"seed\":{seed}");
        prop_assert!(last.contains(&seed_stamp));
    }

    /// The lab substrate feeds the same export pipeline: a real-thread run
    /// under the deterministic scheduler produces a trace and metrics whose
    /// replayed event stream — including the `work_summary` event —
    /// reconciles exactly with the lab's own accounting, just as sim runs
    /// do. (The lab emits sim-vocabulary traces precisely so this holds.)
    #[test]
    fn lab_event_stream_reconciles_with_work_metrics(n in 1usize..6, seed in 0u64..50_000) {
        use modular_consensus::lab::Lab;
        use modular_consensus::runtime::Consensus;

        let lab = Lab::new(n, Box::new(adversary::RandomScheduler::new(seed)), &[], 100_000);
        let consensus = Consensus::builder().n(n).memory(lab.memory()).build();
        let report = lab
            .run(seed, |pid, rng| consensus.decide(pid as u64 % 2, rng))
            .expect("lab run terminates");

        let agg = AggregatingRecorder::new();
        let emitted = observe::export_run(seed, Some(&report.trace), &report.metrics, &agg);
        prop_assert_eq!(emitted, report.metrics.total_work());
        prop_assert_eq!(agg.ops(), report.metrics.total_work());
        prop_assert_eq!(agg.individual_ops(), report.metrics.individual_work());
        prop_assert_eq!(agg.per_process_ops(), report.metrics.per_process.clone());
        prop_assert_eq!(agg.prob_writes_attempted(), report.metrics.prob_writes_attempted);
        prop_assert_eq!(agg.prob_writes_performed(), report.metrics.prob_writes_performed);
        // The trace itself accounts for every counted operation.
        prop_assert_eq!(report.trace.len() as u64, report.metrics.total_work());
    }

    /// And the lab's `work_summary` JSONL line is well-formed and carries
    /// the run seed — the contract downstream dashboards rely on, now
    /// guaranteed for both execution substrates.
    #[test]
    fn lab_work_summary_exports_valid_jsonl(n in 1usize..5, seed in 0u64..20_000) {
        use modular_consensus::lab::Lab;
        use modular_consensus::runtime::Consensus;

        let lab = Lab::new(n, Box::new(adversary::RandomScheduler::new(seed)), &[], 100_000);
        let consensus = Consensus::builder().n(n).memory(lab.memory()).build();
        let report = lab
            .run(seed, |pid, rng| consensus.decide(pid as u64 % 2, rng))
            .expect("lab run terminates");

        let (recorder, buf) = JsonlRecorder::in_memory();
        observe::export_run(seed, Some(&report.trace), &report.metrics, &recorder);
        let bytes = buf.lock().unwrap().clone();
        let text = String::from_utf8(bytes).expect("JSONL is UTF-8");
        let last = text.lines().last().expect("at least one event");
        json::validate(last).unwrap_or_else(|e| panic!("invalid JSON ({e}): {last}"));
        prop_assert!(last.contains("\"ev\":\"work_summary\""));
        let seed_stamp = format!("\"seed\":{seed}");
        prop_assert!(last.contains(&seed_stamp));
    }
}

/// One bounded-consensus run over fault-injected lab memory, returning the
/// pieces every reconciliation check needs: the fault layer's own counters,
/// the runtime telemetry, and whatever the recorder accumulated.
fn faulted_bounded_run(
    n: usize,
    seed: u64,
    recorder: std::sync::Arc<dyn Recorder>,
) -> (
    modular_consensus::runtime::FaultCounts,
    u64,      // telemetry.faults_injected()
    u64,      // telemetry.fallbacks_taken()
    [u64; 4], // per-class telemetry counters
) {
    use modular_consensus::lab::Lab;
    use modular_consensus::quorums::BinaryScheme;
    use modular_consensus::runtime::ConsensusOptions;
    use std::sync::Arc;

    let lab = Lab::new(
        n,
        Box::new(adversary::RandomScheduler::new(seed)),
        &[],
        400_000,
    );
    let plan = FaultPlan::seeded(seed)
        .lost_prob_writes(0.3)
        .stale_reads(0.2)
        .delayed_writes(0.2, 3)
        .register_resets(0.05);
    let memory = FaultyMemory::new(lab.memory(), plan);
    let options = ConsensusOptions {
        n,
        scheme: Arc::new(BinaryScheme::new()),
        schedule: WriteSchedule::impatient(),
        fast_path: true,
        max_conciliator_rounds: Some(2),
        conciliator: mc_runtime::ConciliatorChoice::Impatient,
    };
    let consensus = BoundedConsensus::with_recorder_in(memory.clone(), options, recorder);
    let memory = memory.observed_by(Arc::clone(consensus.telemetry_handle()));
    lab.run(seed, |pid, rng| consensus.decide(pid, pid as u64 % 2, rng))
        .expect("bounded run over faulty memory terminates");
    let telemetry = consensus.telemetry();
    (
        memory.fault_counts(),
        telemetry.faults_injected(),
        telemetry.fallbacks_taken(),
        [
            telemetry.lost_prob_writes(),
            telemetry.stale_reads(),
            telemetry.delayed_commits(),
            telemetry.register_resets(),
        ],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every fault the injection layer delivers is triple-accounted: the
    /// layer's own counters, the runtime telemetry snapshot, and the
    /// recorder's aggregated event stream agree — in total, per class, and
    /// on the fallback tally.
    #[test]
    fn fault_events_reconcile_across_all_three_ledgers(n in 2usize..5, seed in 0u64..20_000) {
        use std::sync::Arc;

        let agg = Arc::new(AggregatingRecorder::new());
        let (counts, tel_total, tel_fallbacks, per_class) =
            faulted_bounded_run(n, seed, Arc::clone(&agg) as Arc<dyn Recorder>);

        prop_assert_eq!(tel_total, counts.total());
        prop_assert_eq!(per_class[0], counts.lost_prob_writes);
        prop_assert_eq!(per_class[1], counts.stale_reads);
        prop_assert_eq!(per_class[2], counts.delayed_commits);
        prop_assert_eq!(per_class[3], counts.register_resets);
        prop_assert_eq!(agg.faults_injected(), counts.total());
        prop_assert_eq!(agg.fallbacks_taken(), tel_fallbacks);
    }

    /// The JSONL export carries one well-formed `fault_injected` line per
    /// delivered fault and one `fallback_taken` line per fallback — the
    /// event stream neither drops nor duplicates faults.
    #[test]
    fn fault_events_export_one_jsonl_line_each(n in 2usize..5, seed in 0u64..20_000) {
        use std::sync::Arc;

        let (recorder, buf) = JsonlRecorder::in_memory();
        let (counts, _, tel_fallbacks, _) =
            faulted_bounded_run(n, seed, Arc::new(recorder) as Arc<dyn Recorder>);

        let bytes = buf.lock().unwrap().clone();
        let text = String::from_utf8(bytes).expect("JSONL is UTF-8");
        let mut fault_lines = 0u64;
        let mut fallback_lines = 0u64;
        for (ix, line) in text.lines().enumerate() {
            json::validate(line)
                .unwrap_or_else(|e| panic!("line {ix} is not valid JSON ({e}): {line}"));
            if line.contains("\"ev\":\"fault_injected\"") {
                fault_lines += 1;
            }
            if line.contains("\"ev\":\"fallback_taken\"") {
                fallback_lines += 1;
            }
        }
        prop_assert_eq!(fault_lines, counts.total());
        prop_assert_eq!(fallback_lines, tel_fallbacks);
    }
}

/// One seeded chaos-service run: drain-boundary panics force worker
/// restarts with cell re-admission, then deterministic shedding with the
/// workers paused trips the circuit breaker. Returns the runtime
/// telemetry's own view — `[worker_restarts, resubmitted_cells,
/// circuit_state]` — plus its rendered snapshot; the recorder's view stays
/// with the caller.
fn chaos_service_run(
    seed: u64,
    panics: u32,
    recorder: std::sync::Arc<dyn Recorder>,
) -> ([u64; 3], modular_consensus::telemetry::Snapshot) {
    use modular_consensus::runtime::{
        BackpressurePolicy, ChaosPlan, CircuitOptions, ConsensusService, SupervisorOptions,
    };
    use std::time::Duration;

    let service = ConsensusService::builder()
        .n(2)
        .values(64)
        .participants(1)
        .shards(1)
        .workers(1)
        .seed(seed)
        .chaos(ChaosPlan::seeded(seed).panic_every(1, panics))
        .supervisor(SupervisorOptions {
            restart_budget: panics + 1,
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_micros(200),
        })
        .backpressure(BackpressurePolicy::Shed {
            max_queue_depth: 16,
        })
        .circuit(CircuitOptions {
            overload_threshold: 3,
            trip_queue_depth: 0,
            cooldown: Duration::from_secs(3600),
        })
        .recorder(recorder)
        .build();

    // Phase 1 — decide through the chaos: every drain panics until the
    // plan's budget is spent, so the worker restarts exactly `panics`
    // times, re-admitting each drained batch exactly once.
    let handles: Vec<_> = (0..8u64)
        .map(|i| service.submit(i, i).expect("queue has room"))
        .collect();
    for (i, handle) in handles.into_iter().enumerate() {
        assert_eq!(handle.wait(), Ok(i as u64), "seed {seed}: phase 1");
    }

    // Phase 2 — trip the breaker: with draining paused, admission alone
    // decides each submission's fate. Fill the queue, then shed three
    // consecutive proposals to cross the overload threshold.
    service.pause();
    let queued: Vec<_> = (0..16u64)
        .map(|i| service.submit(1000 + i, i).expect("fills to the bound"))
        .collect();
    for i in 0..3u64 {
        assert!(
            service.submit(2000 + i, i).is_err(),
            "seed {seed}: over-bound submit {i} must shed"
        );
    }
    assert!(
        matches!(service.submit(3000, 0), Err(EngineError::CircuitOpen)),
        "seed {seed}: breaker must be open after sustained shedding"
    );
    service.resume();
    for (i, handle) in queued.into_iter().enumerate() {
        assert_eq!(handle.wait(), Ok(i as u64), "seed {seed}: phase 2");
    }

    let telemetry = std::sync::Arc::clone(service.engine().telemetry_handle());
    drop(service);
    let snapshot = telemetry.snapshot();
    (
        [
            telemetry.worker_restarts(),
            telemetry.resubmitted_cells(),
            telemetry.circuit_state(),
        ],
        snapshot,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Supervision and circuit-breaker activity is triple-accounted: the
    /// runtime telemetry counters, the recorder's aggregated event stream,
    /// and the rendered snapshot (JSON and Prometheus included) agree on
    /// restarts, re-admitted cells, and the final breaker state.
    #[test]
    fn chaos_metrics_reconcile_across_all_three_ledgers(
        seed in 0u64..10_000,
        panics in 1u32..4,
    ) {
        use std::sync::Arc;

        let agg = Arc::new(AggregatingRecorder::new());
        let ([restarts, resubmitted, circuit], snapshot) =
            chaos_service_run(seed, panics, Arc::clone(&agg) as Arc<dyn Recorder>);

        // The run is deterministic in shape: the chaos plan spends its full
        // panic budget, and phase 2 leaves the breaker open.
        prop_assert_eq!(restarts, u64::from(panics));
        prop_assert_eq!(circuit, 1, "breaker left open");

        // Ledger 2: the recorder folded the same events.
        prop_assert_eq!(agg.worker_restarts(), restarts);
        prop_assert_eq!(agg.resubmitted_cells(), resubmitted);
        prop_assert_eq!(agg.circuit_state(), circuit);
        prop_assert!(agg.circuit_transitions() >= 1);

        // Ledger 3: the snapshot renders the same numbers everywhere.
        prop_assert_eq!(snapshot.counter_value("worker_restarts"), Some(restarts));
        prop_assert_eq!(snapshot.counter_value("resubmitted_cells"), Some(resubmitted));
        let json = snapshot.to_json();
        prop_assert!(
            json.contains(&format!("\"circuit_state\":{{\"value\":{circuit},")),
            "snapshot JSON lacks the circuit gauge: {json}"
        );
        let prom = snapshot.to_prometheus();
        prop_assert!(
            prom.contains(&format!("\ncircuit_state {circuit}\n")),
            "Prometheus export lacks the circuit gauge: {prom}"
        );
        let restart_line = format!("\nworker_restarts {restarts}\n");
        prop_assert!(prom.contains(&restart_line), "missing {}", restart_line.trim());
        let resubmit_line = format!("\nresubmitted_cells {resubmitted}\n");
        prop_assert!(prom.contains(&resubmit_line), "missing {}", resubmit_line.trim());
    }

    /// The JSONL export carries one well-formed `worker_restarted` line per
    /// restart — attempts numbered consecutively from 1 — and a
    /// `circuit_transition` line whose final state is `open`.
    #[test]
    fn chaos_events_export_one_jsonl_line_each(
        seed in 0u64..10_000,
        panics in 1u32..4,
    ) {
        use std::sync::Arc;

        let (recorder, buf) = JsonlRecorder::in_memory();
        let ([restarts, _, _], _) =
            chaos_service_run(seed, panics, Arc::new(recorder) as Arc<dyn Recorder>);

        let bytes = buf.lock().unwrap().clone();
        let text = String::from_utf8(bytes).expect("JSONL is UTF-8");
        let mut restart_lines = 0u64;
        let mut last_circuit_state = None;
        for (ix, line) in text.lines().enumerate() {
            json::validate(line)
                .unwrap_or_else(|e| panic!("line {ix} is not valid JSON ({e}): {line}"));
            if line.contains("\"ev\":\"worker_restarted\"") {
                restart_lines += 1;
                let stamp = format!("\"attempt\":{restart_lines}");
                prop_assert!(line.contains(&stamp), "line {} lacks {}: {}", ix, stamp, line);
            }
            if line.contains("\"ev\":\"circuit_transition\"") {
                last_circuit_state = Some(line.contains("\"state\":\"open\""));
            }
        }
        prop_assert_eq!(restart_lines, restarts);
        prop_assert_eq!(
            last_circuit_state,
            Some(true),
            "final circuit_transition line must record the open state"
        );
    }
}
