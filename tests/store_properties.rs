//! Properties of the replicated store (`mc-store`): duplicated and
//! reordered client retries must be observationally identical to a
//! deduplicated sequential history (exactly-once), and snapshot/restore
//! must round-trip — both for the bare state machine and through a store
//! resumed from a snapshot.

use modular_consensus::store::{KvCommand, KvStore, ReplicatedStore, StateMachine, StoreError};
use proptest::prelude::*;

/// One generated command, resolved against the reference machine at drive
/// time (so `expect_sel == 2` produces a CAS against the *current* value —
/// the case that actually swaps).
fn build_command(spec: (u8, u64, u64, u8), reference: &KvStore) -> KvCommand {
    let (op, key, value, expect_sel) = spec;
    match op {
        0 => KvCommand::Get { key },
        1 => KvCommand::Put { key, value },
        2 => KvCommand::Cas {
            key,
            expect: match expect_sel {
                0 => None,
                1 => Some(value),
                _ => reference.get(key),
            },
            value,
        },
        _ => KvCommand::Delete { key },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// However many duplicate copies of each command are delivered —
    /// immediately or reordered several commands late — the store's
    /// observable history equals applying each distinct command exactly
    /// once, in issue order, on a bare machine: same responses, same
    /// final state, `commands_applied` counting only distinct commands,
    /// and every late copy answered from the session cache (or refused
    /// as stale once its cache slot is overwritten).
    #[test]
    fn duplicated_reordered_retries_equal_deduplicated_sequential_history(
        clients in 1u64..4,
        script in prop::collection::vec((0u8..4, 0u64..6, 0u64..50, 0u8..3, 0u8..3), 1..28),
        sequencers in 1usize..4,
        rotate in any::<u64>(),
    ) {
        let mut store = ReplicatedStore::<KvStore>::builder()
            .sequencers(sequencers)
            .batch_commands(4)
            .snapshot_every(8)
            .build();
        let mut reference = KvStore::new();
        // Per-client last sequence number and its reference response —
        // the model of the store's session table.
        let mut last_seq = vec![0u64; clients as usize + 1];
        let mut distinct = 0u64;
        let mut dup_copies = 0u64;
        let mut stale_copies = 0u64;
        // Duplicate copies scheduled for later, possibly *after* their
        // session has moved on.
        let mut pending: Vec<(u64, u64, KvCommand)> = Vec::new();
        let mut cached = vec![None; clients as usize + 1];

        for (i, &(op, key, value, expect_sel, dups)) in script.iter().enumerate() {
            let client = (i as u64 % clients) + 1;
            let command = build_command((op, key, value, expect_sel), &reference);
            let expected = reference.apply(&command);
            let seq = last_seq[client as usize] + 1;
            last_seq[client as usize] = seq;
            cached[client as usize] = Some(expected);
            distinct += 1;

            let got = store.submit(client, seq, command).wait();
            prop_assert_eq!(got, Ok(expected), "command {} first delivery", i);

            for _ in 0..dups {
                pending.push((client, seq, command));
            }
            // Flush the retry backlog every third command, rotated so the
            // copies land out of submission order and across sessions.
            if i % 3 == 2 || i == script.len() - 1 {
                if !pending.is_empty() {
                    let pivot = (rotate as usize) % pending.len();
                    pending.rotate_left(pivot);
                }
                for (c, s, cmd) in pending.drain(..) {
                    let redelivered = store.submit(c, s, cmd).wait();
                    if s == last_seq[c as usize] {
                        dup_copies += 1;
                        let cache = cached[c as usize].expect("session has a cached response");
                        prop_assert_eq!(redelivered, Ok(cache), "late duplicate of ({}, {})", c, s);
                    } else {
                        stale_copies += 1;
                        prop_assert_eq!(
                            redelivered,
                            Err(StoreError::Stale { last_seq: last_seq[c as usize] }),
                            "stale duplicate of ({}, {})", c, s
                        );
                    }
                }
            }
        }

        // Exactly-once: the machine saw each distinct command once, and
        // every extra copy is accounted as duplicate or stale.
        let telemetry = store.telemetry();
        prop_assert_eq!(telemetry.commands_applied(), distinct);
        prop_assert_eq!(telemetry.duplicates_served(), dup_copies);
        prop_assert_eq!(telemetry.stale_commands(), stale_copies);
        let final_state = store.read_with(u64::MAX, |kv| kv.snapshot());
        prop_assert_eq!(final_state, reference.snapshot());
        store.shutdown();
    }

    /// `S::restore(&s.snapshot())` is behaviorally identical to `s`: the
    /// restored machine answers an arbitrary command tail exactly like
    /// the original — directly, and when the snapshot seeds a fresh
    /// [`ReplicatedStore`] via `restore_from`.
    #[test]
    fn snapshot_restore_round_trips_through_machine_and_store(
        history in prop::collection::vec((0u8..4, 0u64..8, 0u64..50, 0u8..3), 0..40),
        tail in prop::collection::vec((0u8..4, 0u64..8, 0u64..50, 0u8..3), 1..16),
    ) {
        let mut original = KvStore::new();
        for &spec in &history {
            let command = build_command(spec, &original);
            original.apply(&command);
        }
        let snapshot = original.snapshot();
        let mut restored = KvStore::restore(&snapshot);
        prop_assert_eq!(restored.snapshot(), snapshot.clone());

        let mut store = ReplicatedStore::<KvStore>::builder()
            .sequencers(2)
            .restore_from(&snapshot)
            .build();
        let mut session = store.client();
        for &spec in &tail {
            let command = build_command(spec, &restored);
            let expected_original = original.apply(&command);
            let expected_restored = restored.apply(&command);
            prop_assert_eq!(expected_original, expected_restored);
            prop_assert_eq!(session.call(command), Ok(expected_restored));
        }
        prop_assert_eq!(original.snapshot(), restored.snapshot());
        prop_assert_eq!(store.read_with(1, |kv| kv.snapshot()), restored.snapshot());
        store.shutdown();
    }
}
