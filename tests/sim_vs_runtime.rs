//! Cross-substrate checks: the simulator algorithms and the thread-runtime
//! algorithms are the same protocols, so both must satisfy the same
//! contracts, and their cost shapes must match.

use std::sync::Arc;

use modular_consensus::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn run_threads(n: usize, m: u64, trial: u64) -> Vec<u64> {
    let c = Arc::new(Consensus::builder().n(n).values(m).build());
    let handles: Vec<_> = (0..n as u64)
        .map(|t| {
            let c = Arc::clone(&c);
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(trial * 1000 + t);
                c.decide(t % m, &mut rng)
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

fn run_sim(n: usize, m: u64, trial: u64) -> Vec<u64> {
    let spec = ConsensusBuilder::multivalued(m).build();
    let inputs: Vec<u64> = (0..n as u64).map(|t| t % m).collect();
    let out = harness::run_object(
        &spec,
        &inputs,
        &mut adversary::RandomScheduler::new(trial),
        trial,
        &EngineConfig::default(),
    )
    .unwrap();
    properties::check_consensus(&inputs, &out.outputs).unwrap();
    out.values()
}

#[test]
fn both_substrates_satisfy_consensus() {
    for trial in 0..25 {
        let sim_values = run_sim(6, 4, trial);
        assert!(sim_values.windows(2).all(|w| w[0] == w[1]));
        assert!(sim_values[0] < 4);

        let thread_values = run_threads(6, 4, trial);
        assert!(
            thread_values.windows(2).all(|w| w[0] == w[1]),
            "threads disagreed: {thread_values:?}"
        );
        assert!(thread_values[0] < 4);
    }
}

#[test]
fn runtime_conciliator_matches_sim_validity_contract() {
    // Thread conciliator: result is always someone's proposal.
    for trial in 0..40 {
        let c = Arc::new(mc_runtime::ImpatientConciliator::new(4));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(trial * 7 + t);
                    c.propose(t + 10, &mut rng)
                })
            })
            .collect();
        for h in handles {
            let v = h.join().unwrap();
            assert!((10..14).contains(&v));
        }
    }
}

#[test]
fn runtime_ratifier_coherence_matches_model_checker() {
    for trial in 0..100 {
        let r = Arc::new(mc_runtime::AtomicRatifier::bitvector(8));
        let handles: Vec<_> = (0..5u64)
            .map(|t| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || r.ratify((t + trial) % 8))
            })
            .collect();
        let outs: Vec<Decision> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        properties::check_coherence(&outs).unwrap_or_else(|e| panic!("trial {trial}: {e}"));
        let inputs: Vec<u64> = (0..5u64).map(|t| (t + trial) % 8).collect();
        properties::check_validity(&inputs, &outs).unwrap();
    }
}

#[test]
fn stage_depth_is_small_on_both_substrates() {
    // Expected conciliator rounds ≤ 1/δ; in practice a couple of stages.
    let mut worst_threads = 0;
    for trial in 0..20 {
        let c = Arc::new(Consensus::builder().n(6).build());
        let handles: Vec<_> = (0..6u64)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(trial * 11 + t);
                    c.decide(t % 2, &mut rng)
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        worst_threads = worst_threads.max(c.stages_used());
    }
    assert!(worst_threads <= 30, "threads used {worst_threads} stages");

    let probe = ChainProbe::new();
    let spec = ConsensusBuilder::binary().probe(Arc::clone(&probe)).build();
    let mut worst_sim = 0;
    for seed in 0..20 {
        probe.reset();
        let inputs = harness::inputs::alternating(6, 2);
        harness::run_object(
            &spec,
            &inputs,
            &mut adversary::RandomScheduler::new(seed),
            seed,
            &EngineConfig::default(),
        )
        .unwrap();
        worst_sim = worst_sim.max(probe.max_stage());
    }
    assert!(worst_sim <= 30, "sim used {worst_sim} stages");
}
