//! Cross-validation of the two execution engines: a run recorded by the
//! `mc-sim` engine, when re-executed by the `mc-check` replayer from its
//! trace, must produce byte-identical outputs.
//!
//! This pins both implementations to the same operational semantics of the
//! model (§2): if either engine's interleaving, probabilistic-write, or
//! session-stepping logic drifted, these tests would diverge.

use std::sync::Arc;

use modular_consensus::check::{replay_to_completion, CoinPolicy, PathEvent};
use modular_consensus::prelude::*;
use modular_consensus::sim::{Event, Trace};

/// Converts an engine trace into a replay script: each event contributes a
/// scheduling choice, and each probabilistic write additionally contributes
/// its observed coin outcome.
fn script_from_trace(trace: &Trace) -> Vec<PathEvent> {
    let mut script = Vec::new();
    for Event {
        pid, op, observed, ..
    } in trace.events()
    {
        script.push(PathEvent::Sched(*pid));
        if let modular_consensus::model::Op::ProbWrite { prob, .. } = op {
            // Certain or impossible writes don't branch in the replayer.
            if prob.get() > 0.0 && !prob.is_certain() {
                let performed = *observed == Some(1);
                script.push(PathEvent::Coin(performed));
            }
        }
    }
    script
}

fn cross_validate(spec: &dyn ObjectSpec, inputs: &[Value], seeds: u64) {
    for seed in 0..seeds {
        let outcome = harness::run_object(
            spec,
            inputs,
            &mut adversary::RandomScheduler::new(seed),
            seed,
            &EngineConfig::default().with_trace(),
        )
        .unwrap();
        let trace = outcome.trace.as_ref().expect("trace recorded");
        let script = script_from_trace(trace);
        let replayed =
            replay_to_completion(spec, inputs, CoinPolicy::Forbid, script.len() + 1, &script)
                .unwrap_or_else(|e| panic!("seed {seed}: replay failed: {e}"));
        assert_eq!(
            replayed, outcome.outputs,
            "seed {seed}: engines disagree on outputs"
        );
    }
}

#[test]
fn ratifier_runs_replay_identically() {
    cross_validate(&Ratifier::binary(), &[0, 1, 1, 0], 40);
    cross_validate(&Ratifier::binomial(6), &[5, 1, 3], 40);
    cross_validate(&Ratifier::bitvector(8), &[7, 0, 2, 2], 40);
}

#[test]
fn conciliator_runs_replay_identically() {
    cross_validate(&FirstMoverConciliator::impatient(), &[0, 1, 2, 3], 60);
}

#[test]
fn full_consensus_runs_replay_identically() {
    let spec = ConsensusBuilder::multivalued(4).build();
    cross_validate(&spec, &[0, 3, 1, 2, 3], 30);
}

#[test]
fn composition_runs_replay_identically() {
    let spec = Chain::pair(
        Arc::new(FirstMoverConciliator::impatient()),
        Arc::new(Ratifier::binary()),
    );
    cross_validate(&spec, &[1, 0, 1], 40);
}

mod differential {
    //! Property-based differential testing: arbitrary chains of the
    //! library's coin-free objects must execute identically on both
    //! engines.

    use super::*;
    use proptest::prelude::*;

    fn stage_from_tag(tag: u8) -> Arc<dyn ObjectSpec> {
        match tag % 4 {
            0 => Arc::new(FirstMoverConciliator::impatient()),
            1 => Arc::new(FirstMoverConciliator::with_schedule(
                WriteSchedule::geometric(2.0, 4.0),
            )),
            2 => Arc::new(Ratifier::binomial(4)),
            _ => Arc::new(Ratifier::bitvector(4)),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn random_chains_replay_identically(
            tags in prop::collection::vec(0u8..4, 1..5),
            n in 1usize..7,
            seed in 0u64..100_000,
        ) {
            let chain = Chain::new(tags.iter().map(|&t| stage_from_tag(t)).collect());
            let inputs = harness::inputs::random(n, 4, seed ^ 0xD1FF);
            let outcome = harness::run_object(
                &chain,
                &inputs,
                &mut adversary::RandomScheduler::new(seed),
                seed,
                &EngineConfig::default().with_trace(),
            ).unwrap();
            let script = script_from_trace(outcome.trace.as_ref().unwrap());
            let replayed = replay_to_completion(
                &chain,
                &inputs,
                CoinPolicy::Forbid,
                script.len() + 1,
                &script,
            ).unwrap();
            prop_assert_eq!(replayed, outcome.outputs);
        }
    }
}
