//! Keeps `docs/custom-objects.md` honest: the tutorial's code, compiled
//! and executed. If this file diverges from the doc, update both.

use std::sync::Arc;

use modular_consensus::check::Explorer;
use modular_consensus::model::{
    Action, Ctx, DecidingObject, Decision, InstantiateCtx, Op, ProcessId, RegisterId, Response,
    Session,
};
use modular_consensus::prelude::*;
use modular_consensus::quorums::TableScheme;

#[derive(Clone)]
pub struct StickySpec;

struct StickyObject {
    reg: RegisterId,
}

struct StickySession {
    reg: RegisterId,
    input: u64,
    wrote: bool,
}

impl ObjectSpec for StickySpec {
    fn instantiate(&self, ctx: &mut InstantiateCtx<'_>) -> Arc<dyn DecidingObject> {
        Arc::new(StickyObject {
            reg: ctx.alloc.alloc_block(1),
        })
    }

    fn name(&self) -> String {
        "sticky".into()
    }
}

impl DecidingObject for StickyObject {
    fn session(&self, _pid: ProcessId) -> Box<dyn Session + Send> {
        Box::new(StickySession {
            reg: self.reg,
            input: 0,
            wrote: false,
        })
    }
}

impl Session for StickySession {
    fn begin(&mut self, input: u64, _ctx: &mut Ctx<'_>) -> Action {
        self.input = input;
        Action::Invoke(Op::Read(self.reg))
    }

    fn poll(&mut self, response: Response, _ctx: &mut Ctx<'_>) -> Action {
        if self.wrote {
            self.wrote = false;
            return Action::Invoke(Op::Read(self.reg));
        }
        match response.expect_read() {
            Some(v) => Action::Halt(Decision::continue_with(v)),
            None => {
                self.wrote = true;
                Action::Invoke(Op::Write {
                    reg: self.reg,
                    value: self.input,
                })
            }
        }
    }
}

#[test]
fn tutorial_step_2_run_under_adversaries() {
    let outcome = harness::run_object(
        &StickySpec,
        &[0, 1, 0, 1],
        &mut adversary::SplitKeeper::new(7),
        42,
        &EngineConfig::default(),
    )
    .unwrap();
    properties::check_weak_consensus(&[0, 1, 0, 1], &outcome.outputs).unwrap();
}

#[test]
fn tutorial_step_3_model_check() {
    let report = Explorer::new(StickySpec, vec![0, 1])
        .verify_safety()
        .unwrap();
    assert!(report.is_exhaustive_pass());

    // The tutorial's punchline: the deterministic-write race has worst-case
    // agreement probability exactly 0 — the probabilistic write of
    // Theorem 7 is essential.
    let delta = Explorer::new(StickySpec, vec![0, 1])
        .worst_case_agreement()
        .unwrap();
    assert_eq!(delta.truncated, 0);
    assert_eq!(delta.probability, 0.0);

    // Contrast with the paper's conciliator (checked in mc-check's own
    // tests to be ≥ 0.25 exactly).
    let real = Explorer::new(FirstMoverConciliator::impatient(), vec![0, 1])
        .worst_case_agreement()
        .unwrap();
    assert!(real.probability > 0.0);
}

#[test]
fn tutorial_step_4_compose() {
    let chain = Chain::pair(Arc::new(StickySpec), Arc::new(Ratifier::binary()));
    for seed in 0..20 {
        let ins = harness::inputs::alternating(4, 2);
        let out = harness::run_object(
            &chain,
            &ins,
            &mut adversary::RandomScheduler::new(seed),
            seed,
            &EngineConfig::default(),
        )
        .unwrap();
        properties::check_weak_consensus(&ins, &out.outputs).unwrap();
    }
}

#[test]
fn tutorial_step_5_custom_quorums() {
    let scheme = TableScheme::new(
        4,
        vec![vec![0], vec![1, 2], vec![1, 3]],
        vec![vec![1, 2, 3], vec![0, 3], vec![0, 2]],
    )
    .unwrap();
    let ratifier = Ratifier::with_scheme(Arc::new(scheme));
    let ins = harness::inputs::unanimous(4, 2);
    let out = harness::run_object(
        &ratifier,
        &ins,
        &mut adversary::RoundRobin::new(),
        0,
        &EngineConfig::default(),
    )
    .unwrap();
    properties::check_acceptance(&ins, &out.outputs).unwrap();
}
