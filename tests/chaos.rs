//! Chaos campaign: randomized protocol × adversary × input × crash
//! configurations, hammering the safety properties from every direction at
//! once. Complements the structured matrices with broad randomized
//! coverage; every scenario is reproducible from its printed seed.

use std::sync::Arc;

use modular_consensus::model::ProcessId;
use modular_consensus::prelude::*;
use modular_consensus::sim::harness::run_with_crashes;
use modular_consensus::sim::Adversary;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

struct Scenario {
    seed: u64,
    n: usize,
    m: u64,
    spec: Arc<dyn ObjectSpec>,
    spec_name: String,
    adversary: Box<dyn Adversary>,
    crashes: Vec<(ProcessId, u64)>,
    cheap_collect: bool,
}

fn make_scenario(seed: u64) -> Scenario {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = rng.random_range(1..=8usize);
    let m = rng.random_range(2..=9u64);

    let (spec, cheap_collect): (Arc<dyn ObjectSpec>, bool) = match rng.random_range(0..6u32) {
        0 => (Arc::new(ConsensusBuilder::multivalued(m).build()), false),
        1 => (
            Arc::new(ConsensusBuilder::multivalued(m).without_fast_path().build()),
            false,
        ),
        2 => (
            Arc::new(
                ConsensusBuilder::multivalued(m)
                    .bounded(rng.random_range(1..4usize))
                    .build(),
            ),
            false,
        ),
        3 => (
            Arc::new(
                ConsensusBuilder::new(
                    Arc::new(FirstMoverConciliator::with_schedule(
                        WriteSchedule::geometric(1.0, rng.random_range(2..5u32) as f64),
                    )),
                    Arc::new(Ratifier::bitvector(m)),
                )
                .build(),
            ),
            false,
        ),
        4 => (
            Arc::new(
                ConsensusBuilder::new(
                    Arc::new(FirstMoverConciliator::impatient()),
                    Arc::new(CollectRatifier::new()),
                )
                .build(),
            ),
            true,
        ),
        _ => (
            Arc::new(
                ConsensusBuilder::new(
                    Arc::new(mc_core::DummyWriteConciliator::impatient()),
                    Arc::new(Ratifier::binomial(m)),
                )
                .build(),
            ),
            false,
        ),
    };

    let adversary: Box<dyn Adversary> = match rng.random_range(0..7u32) {
        0 => Box::new(adversary::RoundRobin::new()),
        1 => Box::new(adversary::RandomScheduler::new(seed ^ 1)),
        2 => Box::new(adversary::FixedOrder::bursty(
            n,
            rng.random_range(1..6usize),
        )),
        3 => Box::new(adversary::WriteBlocker::new()),
        4 => Box::new(adversary::SplitKeeper::new(seed ^ 2)),
        5 => Box::new(sched::NoisyScheduler::new(n, 0.4, seed ^ 3)),
        _ => Box::new(sched::QuantumScheduler::new(rng.random_range(1..8u64))),
    };

    // Crash up to n−1 processes at random early steps (possibly none).
    let crash_count = rng.random_range(0..n.max(1));
    let mut crashes = Vec::new();
    let mut pids: Vec<usize> = (0..n).collect();
    for _ in 0..crash_count {
        let pick = rng.random_range(0..pids.len());
        let pid = pids.swap_remove(pick);
        crashes.push((ProcessId(pid), rng.random_range(0..20u64)));
    }

    let spec_name = spec.name();
    Scenario {
        seed,
        n,
        m,
        spec,
        spec_name,
        adversary,
        crashes,
        cheap_collect,
    }
}

#[test]
fn chaos_campaign_preserves_safety_everywhere() {
    for seed in 0..400u64 {
        let scenario = make_scenario(seed);
        let inputs = harness::inputs::random(scenario.n, scenario.m, seed ^ 0xC0A5);
        let mut config = EngineConfig::default();
        if scenario.cheap_collect {
            config = config.with_cheap_collect();
        }
        let outcome = run_with_crashes(
            scenario.spec.as_ref(),
            &inputs,
            scenario.adversary,
            &scenario.crashes,
            seed,
            &config,
        )
        .unwrap_or_else(|e| {
            panic!(
                "seed {}: {} n={} crashes={:?}: {e}",
                scenario.seed, scenario.spec_name, scenario.n, scenario.crashes
            )
        });
        // Safety among everyone who produced an output.
        let produced: Vec<Decision> = outcome.decisions.iter().copied().flatten().collect();
        let ctx = || {
            format!(
                "seed {}: {} n={} m={} crashes={:?}",
                scenario.seed, scenario.spec_name, scenario.n, scenario.m, scenario.crashes
            )
        };
        properties::check_validity(&inputs, &produced).unwrap_or_else(|e| panic!("{}: {e}", ctx()));
        properties::check_coherence(&produced).unwrap_or_else(|e| panic!("{}: {e}", ctx()));
        // Liveness for survivors: all non-doomed processes decided.
        for (ix, d) in outcome.decisions.iter().enumerate() {
            if !outcome.crashed.contains(&ProcessId(ix)) {
                assert!(
                    d.map(|d| d.is_decided()).unwrap_or(false),
                    "{}: survivor p{ix} undecided",
                    ctx()
                );
            }
        }
    }
}

/// The debugging contract behind the campaign's "reproducible from its
/// printed seed" promise: rebuilding a scenario from nothing but its seed
/// and re-running it yields a *bit-identical* execution — same trace event
/// for event, same decisions, same accounting. This is exactly the workflow
/// for investigating a campaign failure (see `docs/TESTING.md`), so it gets
/// its own regression test rather than being assumed.
#[test]
fn any_scenario_replays_bit_identically_from_its_seed() {
    // A spread of seeds covering every spec and adversary arm.
    for seed in (0..400u64).step_by(13) {
        let run = |seed: u64| {
            let scenario = make_scenario(seed);
            let inputs = harness::inputs::random(scenario.n, scenario.m, seed ^ 0xC0A5);
            let mut config = EngineConfig::default().with_trace();
            if scenario.cheap_collect {
                config = config.with_cheap_collect();
            }
            let outcome = run_with_crashes(
                scenario.spec.as_ref(),
                &inputs,
                scenario.adversary,
                &scenario.crashes,
                seed,
                &config,
            )
            .unwrap_or_else(|e| panic!("seed {seed}: {}: {e}", scenario.spec_name));
            (outcome, scenario.spec_name)
        };
        let (first, name) = run(seed);
        let (second, _) = run(seed);
        assert_eq!(
            first.trace.as_ref().expect("trace recorded"),
            second.trace.as_ref().expect("trace recorded"),
            "seed {seed}: {name}: re-run trace differs"
        );
        assert_eq!(first.decisions, second.decisions, "seed {seed}: {name}");
        assert_eq!(first.metrics, second.metrics, "seed {seed}: {name}");
        assert_eq!(first.crashed, second.crashed, "seed {seed}: {name}");
    }
}
