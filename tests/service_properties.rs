//! Properties of the pipelined batching service (`mc-runtime::service`):
//! the service's decisions must be observationally identical to the
//! engine's direct submit path, the configured [`BackpressurePolicy`]
//! must do exactly what it advertises under deterministic saturation
//! (workers paused, rings filling), and [`RetryPolicy`]'s seeded-jitter
//! backoff schedule must be reproducible, monotone, and capped.

use std::sync::Arc;
use std::time::Duration;

use modular_consensus::lab::{check_service_conformance, Protocol};
use modular_consensus::runtime::{BackpressurePolicy, ConsensusService, EngineError, RetryPolicy};
use proptest::prelude::*;

#[test]
fn service_decisions_match_direct_submit_across_seeds() {
    for seed in 0..20 {
        let proposals: Vec<(u64, u64)> = (0..48u64).map(|i| (i % 9, (i * 13 + seed) % 7)).collect();
        let decisions = check_service_conformance(Protocol::Multivalued(7), &proposals, seed)
            .unwrap_or_else(|d| panic!("seed {seed}: {d}"));
        // participants = 1 makes every decision deterministic: the solo
        // submitter's proposal is the only valid outcome on either leg.
        for (ix, &(_, proposal)) in proposals.iter().enumerate() {
            assert_eq!(decisions[ix], proposal, "seed {seed} proposal {ix}");
        }
    }
}

#[test]
fn binary_service_conforms_even_when_instance_ids_collide() {
    let proposals: Vec<(u64, u64)> = (0..40u64).map(|i| (i % 4, (i / 4) % 2)).collect();
    let decisions = check_service_conformance(Protocol::Binary, &proposals, 3)
        .unwrap_or_else(|d| panic!("{d}"));
    assert_eq!(decisions.len(), proposals.len());
}

#[test]
fn shed_fires_at_exactly_max_queue_depth() {
    let bound = 5usize;
    let service = ConsensusService::builder()
        .n(1)
        .values(64)
        .participants(1)
        .workers(1)
        .backpressure(BackpressurePolicy::Shed {
            max_queue_depth: bound,
        })
        .build();
    // Saturate deterministically: with draining paused, admission alone
    // decides each proposal's fate.
    service.pause();
    let mut handles = Vec::new();
    for i in 0..bound as u64 {
        handles.push(
            service
                .submit(i, i)
                .unwrap_or_else(|e| panic!("proposal {i} below the bound must be admitted: {e}")),
        );
    }
    // Proposal `bound` is the first over the line, and every subsequent one
    // sheds too while the queue stays full.
    for i in bound as u64..bound as u64 + 3 {
        match service.submit(i, i) {
            Err(EngineError::Shed { max_queue_depth }) => assert_eq!(max_queue_depth, bound),
            other => panic!("proposal {i} should shed, got {other:?}"),
        }
    }
    assert_eq!(service.telemetry().proposals_shed(), 3);
    // Once the workers drain, the admitted proposals all decide.
    service.resume();
    for (i, handle) in handles.into_iter().enumerate() {
        assert_eq!(handle.wait(), Ok(i as u64));
    }
}

#[test]
fn block_policy_never_loses_a_proposal() {
    const PRODUCERS: usize = 4;
    const PER_PRODUCER: u64 = 100;
    // A ring far smaller than the offered load: Block must absorb the
    // overload by stalling producers, never by dropping.
    let service = Arc::new(
        ConsensusService::builder()
            .n(1)
            .values(PER_PRODUCER)
            .participants(1)
            .workers(1)
            .ring_capacity(8)
            .backpressure(BackpressurePolicy::Block)
            .build(),
    );
    let threads: Vec<_> = (0..PRODUCERS as u64)
        .map(|p| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                (0..PER_PRODUCER)
                    .map(|i| {
                        let handle = service
                            .submit(p * PER_PRODUCER + i, i)
                            .expect("Block admits every proposal");
                        handle.wait().expect("every proposal decides")
                    })
                    .collect::<Vec<u64>>()
            })
        })
        .collect();
    for thread in threads {
        let decisions = thread.join().unwrap();
        assert_eq!(decisions, (0..PER_PRODUCER).collect::<Vec<u64>>());
    }
    let telemetry = service.telemetry();
    assert_eq!(
        telemetry.proposals_enqueued(),
        PRODUCERS as u64 * PER_PRODUCER
    );
    assert_eq!(telemetry.proposals_rejected(), 0);
    assert_eq!(telemetry.proposals_shed(), 0);
}

#[test]
fn handle_times_out_while_paused_then_decides_after_resume() {
    let service = ConsensusService::builder()
        .n(1)
        .values(8)
        .participants(1)
        .workers(1)
        .build();
    service.pause();
    let handle = service.submit(0, 5).unwrap();
    assert_eq!(
        handle.wait_timeout(Duration::from_millis(20)),
        Err(EngineError::Timeout)
    );
    assert_eq!(handle.poll(), None);
    service.resume();
    assert_eq!(handle.wait(), Ok(5));
    assert_eq!(handle.poll(), Some(Ok(5)));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A policy's backoff schedule is a pure function of the policy: the
    /// jitter for retry `k` comes from `(seed, k)` alone, so recomputing
    /// the schedule — in any order, any number of times — yields the same
    /// delays.
    #[test]
    fn retry_schedule_is_deterministic_per_seed(
        seed in 0u64..u64::MAX,
        base_us in 1u64..10_000,
        cap_ms in 1u64..100,
        jitter_pct in 0u32..=100,
        retries in 1u32..24,
    ) {
        let policy = RetryPolicy {
            max_retries: retries,
            base_delay: Duration::from_micros(base_us),
            max_delay: Duration::from_millis(cap_ms),
            jitter: f64::from(jitter_pct) / 100.0,
            seed,
        };
        let forward = policy.schedule();
        let backward: Vec<Duration> =
            (0..retries).rev().map(|k| policy.delay_for(k)).rev().collect();
        prop_assert_eq!(&forward, &backward);
        prop_assert_eq!(&forward, &policy.schedule());
    }

    /// The schedule never shrinks: each raw delay at least doubles until
    /// the cap, outgrowing any jitter the previous step added, and the cap
    /// clamps both.
    #[test]
    fn retry_schedule_is_monotone_nondecreasing(
        seed in 0u64..u64::MAX,
        base_us in 1u64..10_000,
        cap_ms in 1u64..100,
        jitter_pct in 0u32..=100,
    ) {
        let policy = RetryPolicy {
            max_retries: 24,
            base_delay: Duration::from_micros(base_us),
            max_delay: Duration::from_millis(cap_ms),
            jitter: f64::from(jitter_pct) / 100.0,
            seed,
        };
        let schedule = policy.schedule();
        for (k, pair) in schedule.windows(2).enumerate() {
            prop_assert!(
                pair[0] <= pair[1],
                "retry {k}: {:?} > {:?} in {schedule:?}",
                pair[0],
                pair[1]
            );
        }
    }

    /// No delay — jitter included, however deep the retry count — ever
    /// exceeds `max_delay`, and every delay is at least the raw
    /// exponential floor.
    #[test]
    fn retry_schedule_is_capped_at_max_delay(
        seed in 0u64..u64::MAX,
        base_us in 1u64..10_000,
        cap_ms in 1u64..100,
        jitter_pct in 0u32..=100,
        retry in 0u32..512,
    ) {
        let policy = RetryPolicy {
            max_retries: u32::MAX,
            base_delay: Duration::from_micros(base_us),
            max_delay: Duration::from_millis(cap_ms),
            jitter: f64::from(jitter_pct) / 100.0,
            seed,
        };
        let delay = policy.delay_for(retry);
        prop_assert!(delay <= policy.max_delay, "retry {retry}: {delay:?}");
        let raw_floor = policy
            .max_delay
            .min(Duration::from_nanos(
                u64::try_from(
                    policy
                        .base_delay
                        .as_nanos()
                        .saturating_mul(1u128 << retry.min(63)),
                )
                .unwrap_or(u64::MAX)
                .min(u64::try_from(policy.max_delay.as_nanos()).unwrap_or(u64::MAX)),
            ));
        prop_assert!(delay >= raw_floor, "retry {retry}: {delay:?} < {raw_floor:?}");
    }

    /// Different seeds give different jitter streams (for any policy with
    /// real jitter and a sub-cap base), while zero jitter collapses every
    /// seed to the same pure-exponential schedule.
    #[test]
    fn retry_jitter_stream_depends_exactly_on_the_seed(
        seed_a in 0u64..u64::MAX,
        seed_delta in 1u64..u64::MAX,
    ) {
        let seed_b = seed_a.wrapping_add(seed_delta);
        let template = RetryPolicy {
            max_retries: 16,
            base_delay: Duration::from_micros(100),
            max_delay: Duration::from_secs(3600),
            jitter: 0.9,
            seed: seed_a,
        };
        let jittered_a = template.schedule();
        let jittered_b = RetryPolicy { seed: seed_b, ..template }.schedule();
        prop_assert_ne!(jittered_a, jittered_b);
        let flat_a = RetryPolicy { jitter: 0.0, ..template }.schedule();
        let flat_b = RetryPolicy { jitter: 0.0, seed: seed_b, ..template }.schedule();
        prop_assert_eq!(flat_a, flat_b);
    }
}
