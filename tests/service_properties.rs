//! Properties of the pipelined batching service (`mc-runtime::service`):
//! the service's decisions must be observationally identical to the
//! engine's direct submit path, and the configured [`BackpressurePolicy`]
//! must do exactly what it advertises under deterministic saturation
//! (workers paused, rings filling).

use std::sync::Arc;
use std::time::Duration;

use modular_consensus::lab::{check_service_conformance, Protocol};
use modular_consensus::runtime::{BackpressurePolicy, ConsensusService, EngineError};

#[test]
fn service_decisions_match_direct_submit_across_seeds() {
    for seed in 0..20 {
        let proposals: Vec<(u64, u64)> = (0..48u64).map(|i| (i % 9, (i * 13 + seed) % 7)).collect();
        let decisions = check_service_conformance(Protocol::Multivalued(7), &proposals, seed)
            .unwrap_or_else(|d| panic!("seed {seed}: {d}"));
        // participants = 1 makes every decision deterministic: the solo
        // submitter's proposal is the only valid outcome on either leg.
        for (ix, &(_, proposal)) in proposals.iter().enumerate() {
            assert_eq!(decisions[ix], proposal, "seed {seed} proposal {ix}");
        }
    }
}

#[test]
fn binary_service_conforms_even_when_instance_ids_collide() {
    let proposals: Vec<(u64, u64)> = (0..40u64).map(|i| (i % 4, (i / 4) % 2)).collect();
    let decisions = check_service_conformance(Protocol::Binary, &proposals, 3)
        .unwrap_or_else(|d| panic!("{d}"));
    assert_eq!(decisions.len(), proposals.len());
}

#[test]
fn shed_fires_at_exactly_max_queue_depth() {
    let bound = 5usize;
    let service = ConsensusService::builder()
        .n(1)
        .values(64)
        .participants(1)
        .workers(1)
        .backpressure(BackpressurePolicy::Shed {
            max_queue_depth: bound,
        })
        .build();
    // Saturate deterministically: with draining paused, admission alone
    // decides each proposal's fate.
    service.pause();
    let mut handles = Vec::new();
    for i in 0..bound as u64 {
        handles.push(
            service
                .submit(i, i)
                .unwrap_or_else(|e| panic!("proposal {i} below the bound must be admitted: {e}")),
        );
    }
    // Proposal `bound` is the first over the line, and every subsequent one
    // sheds too while the queue stays full.
    for i in bound as u64..bound as u64 + 3 {
        match service.submit(i, i) {
            Err(EngineError::Shed { max_queue_depth }) => assert_eq!(max_queue_depth, bound),
            other => panic!("proposal {i} should shed, got {other:?}"),
        }
    }
    assert_eq!(service.telemetry().proposals_shed(), 3);
    // Once the workers drain, the admitted proposals all decide.
    service.resume();
    for (i, handle) in handles.into_iter().enumerate() {
        assert_eq!(handle.wait(), Ok(i as u64));
    }
}

#[test]
fn block_policy_never_loses_a_proposal() {
    const PRODUCERS: usize = 4;
    const PER_PRODUCER: u64 = 100;
    // A ring far smaller than the offered load: Block must absorb the
    // overload by stalling producers, never by dropping.
    let service = Arc::new(
        ConsensusService::builder()
            .n(1)
            .values(PER_PRODUCER)
            .participants(1)
            .workers(1)
            .ring_capacity(8)
            .backpressure(BackpressurePolicy::Block)
            .build(),
    );
    let threads: Vec<_> = (0..PRODUCERS as u64)
        .map(|p| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                (0..PER_PRODUCER)
                    .map(|i| {
                        let handle = service
                            .submit(p * PER_PRODUCER + i, i)
                            .expect("Block admits every proposal");
                        handle.wait().expect("every proposal decides")
                    })
                    .collect::<Vec<u64>>()
            })
        })
        .collect();
    for thread in threads {
        let decisions = thread.join().unwrap();
        assert_eq!(decisions, (0..PER_PRODUCER).collect::<Vec<u64>>());
    }
    let telemetry = service.telemetry();
    assert_eq!(
        telemetry.proposals_enqueued(),
        PRODUCERS as u64 * PER_PRODUCER
    );
    assert_eq!(telemetry.proposals_rejected(), 0);
    assert_eq!(telemetry.proposals_shed(), 0);
}

#[test]
fn handle_times_out_while_paused_then_decides_after_resume() {
    let service = ConsensusService::builder()
        .n(1)
        .values(8)
        .participants(1)
        .workers(1)
        .build();
    service.pause();
    let handle = service.submit(0, 5).unwrap();
    assert_eq!(
        handle.wait_timeout(Duration::from_millis(20)),
        Err(EngineError::Timeout)
    );
    assert_eq!(handle.poll(), None);
    service.resume();
    assert_eq!(handle.wait(), Ok(5));
    assert_eq!(handle.poll(), Some(Ok(5)));
}
