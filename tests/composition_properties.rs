//! Property-based tests: composition preserves the weak-consensus
//! properties (Lemmas 1–3, Corollary 4), over randomly generated chains.

use std::sync::Arc;

use modular_consensus::prelude::*;
use proptest::prelude::*;

/// Builds the stage selected by a small tag (proptest generates tags, which
/// keeps strategy values `Debug` and shrinkable).
fn stage_from_tag(tag: u8, m: u64) -> Arc<dyn ObjectSpec> {
    match tag % 5 {
        0 => Arc::new(FirstMoverConciliator::impatient()),
        1 => Arc::new(FirstMoverConciliator::fixed(2.0)),
        2 => Arc::new(FirstMoverConciliator::with_schedule(
            WriteSchedule::geometric(1.0, 4.0),
        )),
        3 => Arc::new(Ratifier::binomial(m)),
        _ => Arc::new(Ratifier::bitvector(m)),
    }
}

fn chain_from_tags(tags: &[u8], m: u64) -> Chain {
    Chain::new(tags.iter().map(|&t| stage_from_tag(t, m)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Corollary 4: any chain of conciliators and ratifiers satisfies
    /// validity and coherence under a random scheduler.
    #[test]
    fn random_chains_are_weak_consensus_objects(
        tags in prop::collection::vec(0u8..5, 1..6),
        n in 2usize..8,
        seed in 0u64..5000,
    ) {
        let chain = chain_from_tags(&tags, 4);
        let inputs = harness::inputs::random(n, 4, seed ^ 0xABCD);
        let out = harness::run_object(
            &chain,
            &inputs,
            &mut adversary::RandomScheduler::new(seed),
            seed,
            &EngineConfig::default(),
        ).unwrap();
        properties::check_weak_consensus(&inputs, &out.outputs)?;
    }

    /// Acceptance survives chains that *start* with a ratifier: unanimous
    /// inputs decide at stage 0 no matter what follows.
    #[test]
    fn ratifier_headed_chains_accept_unanimous_inputs(
        tags in prop::collection::vec(0u8..5, 0..4),
        n in 1usize..8,
        v in 0u64..4,
        seed in 0u64..5000,
    ) {
        let mut stages: Vec<Arc<dyn ObjectSpec>> = vec![Arc::new(Ratifier::binomial(4))];
        stages.extend(tags.iter().map(|&t| stage_from_tag(t, 4)));
        let chain = Chain::new(stages);
        let inputs = harness::inputs::unanimous(n, v);
        let out = harness::run_object(
            &chain,
            &inputs,
            &mut adversary::RandomScheduler::new(seed),
            seed,
            &EngineConfig::default(),
        ).unwrap();
        properties::check_acceptance(&inputs, &out.outputs)?;
    }

    /// Determinism: the same (chain, inputs, adversary seed, coin seed)
    /// reproduces identical outputs and identical work.
    #[test]
    fn runs_are_reproducible(
        tags in prop::collection::vec(0u8..5, 1..4),
        seed in 0u64..5000,
    ) {
        let chain = chain_from_tags(&tags, 3);
        let inputs = harness::inputs::alternating(5, 3);
        let run = |s| {
            harness::run_object(
                &chain,
                &inputs,
                &mut adversary::RandomScheduler::new(s),
                s,
                &EngineConfig::default(),
            ).unwrap()
        };
        let a = run(seed);
        let b = run(seed);
        prop_assert_eq!(a.outputs, b.outputs);
        prop_assert_eq!(a.metrics, b.metrics);
    }

    /// The full consensus construction decides correctly on random inputs
    /// under random schedulers (randomized end-to-end sweep).
    #[test]
    fn consensus_correct_on_random_instances(
        n in 1usize..10,
        m in 2u64..9,
        seed in 0u64..3000,
    ) {
        let spec = ConsensusBuilder::multivalued(m).build();
        let inputs = harness::inputs::random(n, m, seed ^ 0x5A5A);
        let out = harness::run_object(
            &spec,
            &inputs,
            &mut adversary::RandomScheduler::new(seed),
            seed,
            &EngineConfig::default(),
        ).unwrap();
        properties::check_consensus(&inputs, &out.outputs)?;
    }
}
