//! Theorem 5 quantitative checks: the bounded construction
//! `R₋₁; R₀; C₁; R₁; …; C_f; R_f; K` terminates on every seed, and its
//! measured fallback rate reconciles with the closed form
//! `theory::fallback_probability(δ, f) = (1 − δ)^f`.
//!
//! Every run here goes through `mc-lab`, so each trial is a pure function
//! of its seed — the measured rates are bit-reproducible and the tolerance
//! (three standard errors plus a fixed margin, Chernoff-style) cannot
//! flake.

use std::sync::Arc;

use modular_consensus::analysis::theory;
use modular_consensus::lab::Lab;
use modular_consensus::prelude::*;
use modular_consensus::quorums::BinaryScheme;
use modular_consensus::runtime::ConsensusOptions;
use modular_consensus::sim::adversary::RandomScheduler;

const N: usize = 3;
const SEEDS: u64 = 250;

/// Pooled per-stage ratification statistics across a seed sweep.
#[derive(Default)]
struct Sweep {
    terminated: u64,
    entered_c1: u64,
    fell_back: u64,
    /// Conciliator stages entered across all runs that reached `C₁`.
    stages_entered: u64,
    /// Stages whose following ratifier decided (= stages that "ratified").
    ratified: u64,
}

impl Sweep {
    /// Pooled per-stage agreement-then-ratify estimate δ̂.
    fn delta_hat(&self) -> f64 {
        self.ratified as f64 / self.stages_entered as f64
    }

    fn measured_fallback(&self) -> f64 {
        self.fell_back as f64 / self.entered_c1 as f64
    }
}

/// Runs `BoundedConsensus` under the lab for `SEEDS` seeds at truncation
/// depth `f`, checking safety on every run and pooling stage statistics.
fn sweep_runtime(f: u32) -> Sweep {
    let mut sweep = Sweep::default();
    for seed in 0..SEEDS {
        let lab = Lab::new(N, Box::new(RandomScheduler::new(seed)), &[], 400_000);
        let options = ConsensusOptions {
            n: N,
            scheme: Arc::new(BinaryScheme::new()),
            schedule: WriteSchedule::impatient(),
            fast_path: true,
            max_conciliator_rounds: Some(f),
            conciliator: mc_runtime::ConciliatorChoice::Impatient,
        };
        let consensus = BoundedConsensus::with_options_in(lab.memory(), options);
        let report = lab
            .run(seed, |pid, rng| consensus.decide(pid, pid as u64 % 2, rng))
            .unwrap_or_else(|e| panic!("f={f} seed={seed}: bounded run must terminate: {e}"));
        let first = report.decisions[0].expect("decided");
        assert!(first < 2, "f={f} seed={seed}: validity");
        assert!(
            report.decisions.iter().all(|&d| d == Some(first)),
            "f={f} seed={seed}: agreement: {:?}",
            report.decisions
        );
        sweep.terminated += 1;

        let telemetry = consensus.telemetry();
        let max_stage = telemetry.rounds_to_decide().max();
        if telemetry.fallbacks_taken() > 0 {
            sweep.entered_c1 += 1;
            sweep.fell_back += 1;
            sweep.stages_entered += u64::from(f);
        } else if max_stage >= 3 {
            // Decided at ratifier R_j (stage 2j + 1 with the fast-path
            // prefix): j conciliator stages were entered, the last ratified.
            sweep.entered_c1 += 1;
            sweep.stages_entered += (max_stage - 1) / 2;
            sweep.ratified += 1;
        }
    }
    sweep
}

/// Theorem 5 on the real-thread runtime (under the lab): termination on
/// 100% of seeds, and measured fallback within three standard errors (plus
/// a small fixed margin) of `(1 − δ̂)^f`.
#[test]
fn theorem5_bounded_runtime_terminates_and_reconciles() {
    for f in [1u32, 2] {
        let sweep = sweep_runtime(f);
        assert_eq!(sweep.terminated, SEEDS, "f={f}: every seed must decide");
        assert!(
            sweep.entered_c1 >= 30,
            "f={f}: too few runs passed the fast path ({}) to estimate δ",
            sweep.entered_c1
        );
        let delta_hat = sweep.delta_hat();
        let predicted = theory::fallback_probability(delta_hat, f);
        let measured = sweep.measured_fallback();
        let sigma = (predicted * (1.0 - predicted) / sweep.entered_c1 as f64)
            .sqrt()
            .max(1e-9);
        let tolerance = 3.0 * sigma + 0.05;
        assert!(
            (measured - predicted).abs() <= tolerance,
            "f={f}: measured fallback {measured:.4} vs predicted \
             (1-{delta_hat:.4})^{f} = {predicted:.4}, tolerance {tolerance:.4}"
        );
    }
}

/// Deeper truncation can only reduce the fallback rate; by f = 6 the
/// fallback should not be observed at all on this sweep.
#[test]
fn theorem5_fallback_rate_decreases_with_depth() {
    let shallow = sweep_runtime(1);
    let deep = sweep_runtime(6);
    assert!(
        deep.fell_back <= shallow.fell_back,
        "fallback count must not grow with depth: {} -> {}",
        shallow.fell_back,
        deep.fell_back
    );
    assert_eq!(deep.fell_back, 0, "six rounds should never fall back here");
}

/// The model-side bounded chain reconciles too: the same pooled δ̂ /
/// `(1 − δ̂)^f` bookkeeping over `ConsensusBuilder::bounded` runs in the
/// simulator, with the chain probe supplying the deciding stage.
#[test]
fn theorem5_bounded_model_chain_reconciles() {
    let n = 6;
    let f = 1usize;
    let trials = 400u64;
    let probe = ChainProbe::new();
    let spec = ConsensusBuilder::binary()
        .bounded(f)
        .probe(Arc::clone(&probe))
        .build();
    let mut sweep = Sweep::default();
    for seed in 0..trials {
        probe.reset();
        let inputs = harness::inputs::alternating(n, 2);
        let out = harness::run_object(
            &spec,
            &inputs,
            &mut adversary::RandomScheduler::new(seed),
            seed,
            &EngineConfig::default(),
        )
        .unwrap();
        properties::check_consensus(&inputs, &out.outputs).unwrap();
        sweep.terminated += 1;
        let max_stage = probe.max_stage() as u64;
        if max_stage >= (2 + 2 * f) as u64 {
            sweep.entered_c1 += 1;
            sweep.fell_back += 1;
            sweep.stages_entered += f as u64;
        } else if max_stage >= 3 {
            sweep.entered_c1 += 1;
            sweep.stages_entered += (max_stage - 1) / 2;
            sweep.ratified += 1;
        }
    }
    assert_eq!(sweep.terminated, trials);
    assert!(sweep.entered_c1 >= 30, "need samples past the fast path");
    let delta_hat = sweep.delta_hat();
    let predicted = theory::fallback_probability(delta_hat, f as u32);
    let measured = sweep.measured_fallback();
    let sigma = (predicted * (1.0 - predicted) / sweep.entered_c1 as f64)
        .sqrt()
        .max(1e-9);
    let tolerance = 3.0 * sigma + 0.05;
    assert!(
        (measured - predicted).abs() <= tolerance,
        "model: measured {measured:.4} vs predicted {predicted:.4} \
         (δ̂ = {delta_hat:.4}), tolerance {tolerance:.4}"
    );
}

/// `rounds_for_fallback_probability` inverts `fallback_probability`: the
/// returned k is sufficient (`(1−δ)^k ≤ ε`) and minimal (`k − 1` is not).
#[test]
fn rounds_for_fallback_probability_is_tight() {
    for delta in [
        theory::impatient_agreement_lower_bound(),
        0.1,
        0.3,
        0.5,
        0.9,
    ] {
        for eps in [0.1, 0.01, 1e-4, 1e-8] {
            let k = theory::rounds_for_fallback_probability(delta, eps);
            assert!(
                theory::fallback_probability(delta, k) <= eps,
                "δ={delta} ε={eps}: k={k} is not sufficient"
            );
            if k > 1 {
                assert!(
                    theory::fallback_probability(delta, k - 1) > eps,
                    "δ={delta} ε={eps}: k={k} is not minimal"
                );
            }
        }
    }
}
