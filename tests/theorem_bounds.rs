//! Quantitative checks of the paper's theorems in the model.

use modular_consensus::analysis::{theory, wilson_interval};
use modular_consensus::prelude::*;

/// Theorem 7: individual work never exceeds `2⌈lg n⌉ + 4`, under any
/// adversary we can throw at it.
#[test]
fn theorem7_individual_work_bound_is_hard() {
    for n in [2usize, 5, 16, 33, 64] {
        let bound = theory::impatient_individual_work_bound(n as u64);
        for seed in 0..60 {
            let inputs = harness::inputs::alternating(n, 2);
            let out = harness::run_object(
                &FirstMoverConciliator::impatient(),
                &inputs,
                &mut adversary::ImpatienceExploiter::new(),
                seed,
                &EngineConfig::default(),
            )
            .unwrap();
            assert!(
                out.metrics.individual_work() <= bound,
                "n={n} seed={seed}: {} > {bound}",
                out.metrics.individual_work()
            );
        }
    }
}

/// Theorem 7: expected total work ≤ 6n. Check the sample mean against the
/// bound with a generous margin for sampling noise.
#[test]
fn theorem7_total_work_bound_in_expectation() {
    for n in [4usize, 16, 64] {
        let stats = harness::run_trials(
            &FirstMoverConciliator::impatient(),
            250,
            99,
            &EngineConfig::default(),
            |_| harness::inputs::alternating(n, 2),
            |seed| Box::new(adversary::RandomScheduler::new(seed)),
        )
        .unwrap();
        assert!(
            stats.mean_total_work() <= theory::impatient_total_work_bound(n as u64) as f64,
            "n={n}: mean total {} > 6n",
            stats.mean_total_work()
        );
    }
}

/// Theorem 7: agreement probability ≥ δ = (1−e^{−1/4})/4 under each
/// adversary class. The Wilson lower bound of the measured rate must clear
/// δ.
#[test]
fn theorem7_agreement_probability_lower_bound() {
    let delta = theory::impatient_agreement_lower_bound();
    let n = 12;
    type Maker = fn(u64) -> Box<dyn modular_consensus::sim::Adversary>;
    let makers: Vec<(&str, Maker)> = vec![
        ("random", |s| Box::new(adversary::RandomScheduler::new(s))),
        ("exploiter", |_| {
            Box::new(adversary::ImpatienceExploiter::new())
        }),
        (
            "write-blocker",
            |_| Box::new(adversary::WriteBlocker::new()),
        ),
        ("split-keeper", |s| Box::new(adversary::SplitKeeper::new(s))),
    ];
    for (name, make) in makers {
        let stats = harness::run_trials(
            &FirstMoverConciliator::impatient(),
            400,
            2026,
            &EngineConfig::default(),
            |_| harness::inputs::alternating(n, 2),
            |s| make(s),
        )
        .unwrap();
        let ci = wilson_interval(stats.agreements, stats.trials);
        assert!(
            ci.low >= delta,
            "{name}: agreement rate {} (CI low {}) below δ={delta}",
            stats.agreement_rate(),
            ci.low
        );
    }
}

/// Theorem 10: the m-valued ratifier's registers and work are O(log m),
/// and observed work never exceeds the scheme bound.
#[test]
fn theorem10_ratifier_costs() {
    for m in [2u64, 6, 20, 70, 252, 1000] {
        let ratifier = Ratifier::binomial(m);
        let lg = theory::ceil_lg(m);
        assert!(
            ratifier.register_count() <= lg + 8,
            "m={m}: {} registers",
            ratifier.register_count()
        );
        let bitv = Ratifier::bitvector(m);
        assert_eq!(
            bitv.register_count(),
            theory::bitvector_ratifier_registers(m)
        );
        assert_eq!(
            bitv.individual_work_bound(),
            theory::bitvector_ratifier_ops(m)
        );

        for seed in 0..10 {
            let inputs = harness::inputs::random(6, m, seed);
            let out = harness::run_object(
                &ratifier,
                &inputs,
                &mut adversary::RandomScheduler::new(seed),
                seed,
                &EngineConfig::default(),
            )
            .unwrap();
            assert!(out.metrics.individual_work() <= ratifier.individual_work_bound());
            properties::check_weak_consensus(&inputs, &out.outputs).unwrap();
        }
    }
}

/// Theorem 10 at its exact bound for the binary ratifier: 3 registers and
/// at most 4 register operations per process — certified not by sampling
/// but by `mc-check` walking *every* interleaving (with acceptance checked:
/// unanimous inputs must force unanimous decisions), for every binary input
/// vector at n ∈ {2, 3}.
#[test]
fn theorem10_binary_ratifier_exact_bound_exhaustively() {
    use modular_consensus::check::{CheckConfig, Explorer};

    assert_eq!(Ratifier::binary().register_count(), 3);
    assert_eq!(Ratifier::binary().individual_work_bound(), 4);

    for n in [2usize, 3] {
        for bits in 0..(1u64 << n) {
            let inputs: Vec<u64> = (0..n).map(|p| (bits >> p) & 1).collect();
            let report = Explorer::new(Ratifier::binary(), inputs.clone())
                .with_config(CheckConfig {
                    // 4 ops per process is the theorem's bound; give the
                    // checker exactly that much room and no more.
                    max_steps: 4 * n,
                    check_acceptance: true,
                    ..CheckConfig::default()
                })
                .verify_safety()
                .unwrap_or_else(|e| panic!("n={n} inputs={inputs:?}: {e}"));
            // Every path completed within 4n steps — the work bound is
            // exact, not merely expected — and none violated safety (or
            // acceptance, on unanimous inputs).
            assert!(
                report.is_exhaustive_pass(),
                "n={n} inputs={inputs:?}: truncated={} violation={:?}",
                report.truncated_paths,
                report.violation
            );
            assert!(
                report.max_individual_ops <= 4,
                "n={n} inputs={inputs:?}: a process took {} ops",
                report.max_individual_ops
            );
        }
    }
}

/// Theorem 6 at its exact cost bound: the coin→conciliator construction
/// adds exactly 2 registers and 2 operations per process over the
/// underlying weak shared coin — in the model allocator's accounting, in an
/// exhaustive checker sweep of every n = 2 schedule, and in the runtime's
/// register accounting for both coins in the portfolio.
#[test]
fn theorem6_coin_conciliator_exact_overhead() {
    use modular_consensus::check::{CoinPolicy, GraphConfig, GraphExplorer};
    use modular_consensus::runtime::{self as rt, Conciliator as _, WeakSharedCoin as _};
    use std::sync::Arc;

    let coin = || Arc::new(VotingSharedCoin::with_quorum_factor(1).expect("positive factor"));

    for n in [2usize, 3, 6] {
        // Model allocator: composing adds exactly the two announce
        // registers over the bare coin (allocation is eager, so any run
        // observes it).
        let bare = harness::run_object(
            coin().as_ref(),
            &harness::inputs::unanimous(n, 0),
            &mut adversary::RoundRobin::new(),
            5,
            &EngineConfig::default(),
        )
        .unwrap();
        let composed = harness::run_object(
            &CoinConciliator::new(coin()),
            &harness::inputs::alternating(n, 2),
            &mut adversary::RoundRobin::new(),
            5,
            &EngineConfig::default(),
        )
        .unwrap();
        assert_eq!(
            composed.metrics.registers_allocated,
            bare.metrics.registers_allocated + theory::COIN_CONCILIATOR_EXTRA_REGISTERS,
            "n={n}"
        );

        // Unanimous inputs never reach the coin: the overhead is the whole
        // cost — exactly one announce write and one announce read each.
        let unanimous = harness::run_object(
            &CoinConciliator::new(coin()),
            &harness::inputs::unanimous(n, 1),
            &mut adversary::RandomScheduler::new(5),
            5,
            &EngineConfig::default(),
        )
        .unwrap();
        assert_eq!(
            unanimous.metrics.total_work(),
            theory::COIN_CONCILIATOR_EXTRA_OPS * n as u64,
            "n={n}"
        );
        assert_eq!(
            unanimous.metrics.individual_work(),
            theory::COIN_CONCILIATOR_EXTRA_OPS,
            "n={n}"
        );
    }

    // Exhaustive at n = 2: with the vote streams pinned, the checker walks
    // every schedule of the bare coin and of the composed conciliator; the
    // worst-case individual work differs by exactly the two announce ops.
    let sweep = |spec: Arc<dyn modular_consensus::model::ObjectSpec>, inputs: Vec<u64>| {
        GraphExplorer::new(spec, inputs)
            .with_config(GraphConfig {
                max_steps: 400,
                coin_policy: CoinPolicy::Fixed(7),
                ..GraphConfig::default()
            })
            .verify_safety()
            .unwrap()
    };
    // Inputs {0, 1} for the bare coin: a shared coin ignores inputs and may
    // output either bit, so validity only holds when both bits are proposed.
    let bare = sweep(coin(), vec![0, 1]);
    let composed = sweep(Arc::new(CoinConciliator::new(coin())), vec![0, 1]);
    assert!(bare.is_exhaustive_pass(), "{:?}", bare.violation);
    assert!(composed.is_exhaustive_pass(), "{:?}", composed.violation);
    assert_eq!(
        composed.max_individual_ops,
        bare.max_individual_ops + theory::COIN_CONCILIATOR_EXTRA_OPS,
        "bare worst case {} ops",
        bare.max_individual_ops
    );

    // Runtime register accounting mirrors Theorem 6 for both portfolio
    // coins: +2 over the voting coin's n tallies, +2 over the local coin's
    // zero shared registers.
    for n in [2usize, 3, 8] {
        let voting = rt::VotingCoin::new(n);
        let coin_regs = voting.register_count();
        assert_eq!(
            rt::CoinConciliator::new(voting).register_count(),
            coin_regs + theory::COIN_CONCILIATOR_EXTRA_REGISTERS,
            "n={n}"
        );
    }
    assert_eq!(
        rt::CoinConciliator::new(rt::LocalCoin).register_count(),
        theory::COIN_CONCILIATOR_EXTRA_REGISTERS
    );
}

/// §1 headline: binary consensus total work is O(n) — total/n stays bounded
/// as n grows (Attiya–Censor tightness).
#[test]
fn headline_linear_total_work_for_binary_consensus() {
    let spec = ConsensusBuilder::binary().build();
    let mut ratios = Vec::new();
    for n in [8usize, 32, 128] {
        let stats = harness::run_trials(
            &spec,
            60,
            5,
            &EngineConfig::default(),
            |_| harness::inputs::alternating(n, 2),
            |seed| Box::new(adversary::RandomScheduler::new(seed)),
        )
        .unwrap();
        ratios.push(stats.mean_total_work() / n as f64);
    }
    // The per-process constant should not grow meaningfully with n.
    let (first, last) = (ratios[0], *ratios.last().unwrap());
    assert!(
        last <= first * 2.0,
        "total work per process grew: {ratios:?}"
    );
}

/// §1 headline: consensus individual work is O(log n) — the growth from
/// n to 16n is bounded by a constant factor of the log growth.
#[test]
fn headline_logarithmic_individual_work() {
    let spec = ConsensusBuilder::binary().build();
    let measure = |n: usize| {
        harness::run_trials(
            &spec,
            80,
            17,
            &EngineConfig::default(),
            |_| harness::inputs::alternating(n, 2),
            |seed| Box::new(adversary::RandomScheduler::new(seed)),
        )
        .unwrap()
        .mean_individual_work()
    };
    let at_8 = measure(8);
    let at_128 = measure(128);
    // lg 128 / lg 8 ≈ 2.3; linear growth would be 16x. Anything under 3x
    // clearly rules out linearity.
    assert!(
        at_128 <= at_8 * 3.0,
        "individual work grew superlogarithmically: {at_8} -> {at_128}"
    );
}

/// Theorem 5: with k conciliator rounds the fallback is hit with probability
/// about (1−δ_observed)^k — in particular, rarely for moderate k, yet the
/// construction stays correct when it is hit.
#[test]
fn theorem5_bounded_construction_fallback_rate() {
    let n = 6;
    let trials = 200;
    let count_fallbacks = |rounds: usize| {
        let probe = ChainProbe::new();
        let spec = ConsensusBuilder::binary()
            .bounded(rounds)
            .probe(std::sync::Arc::clone(&probe))
            .build();
        let mut fallbacks = 0;
        for seed in 0..trials {
            probe.reset();
            let inputs = harness::inputs::alternating(n, 2);
            let out = harness::run_object(
                &spec,
                &inputs,
                &mut adversary::RandomScheduler::new(seed),
                seed,
                &EngineConfig::default(),
            )
            .unwrap();
            properties::check_consensus(&inputs, &out.outputs).unwrap();
            if probe.max_stage() >= 2 + 2 * rounds {
                fallbacks += 1;
            }
        }
        fallbacks
    };
    let at_1 = count_fallbacks(1);
    let at_6 = count_fallbacks(6);
    assert!(
        at_6 <= at_1,
        "fallback rate should fall with k: {at_1} -> {at_6}"
    );
    assert_eq!(at_6, 0, "six rounds should essentially never fall back");
}
