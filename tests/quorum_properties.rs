//! Theorems 8–9 as executable properties: every pair of distinct values
//! must conflict — some register in `v`'s read quorum is in `v'`'s write
//! quorum — and no value's own write quorum may touch its read quorum
//! (otherwise a lone caller would detect a conflict with itself).
//!
//! Small capacities are checked exhaustively over *all* value pairs
//! (quadratic); the sweep then continues to `m = 2¹⁶` with deterministic
//! pair sampling, plus proptest-driven random capacities in between.

use modular_consensus::quorums::verify::{
    check_cross_intersection, check_cross_intersection_sampled,
};
use modular_consensus::quorums::{BinaryScheme, BinomialScheme, BitVectorScheme, QuorumScheme};
use proptest::prelude::*;

/// Exhaustive limit: full quadratic check over every ordered pair.
const EXHAUSTIVE_MAX: u64 = 512;
/// Sampled pairs per scheme at large capacities.
const SAMPLED_PAIRS: usize = 20_000;

fn schemes_for(m: u64) -> Vec<(String, Box<dyn QuorumScheme>)> {
    let mut schemes: Vec<(String, Box<dyn QuorumScheme>)> = vec![
        (
            format!("binomial({m})"),
            Box::new(BinomialScheme::for_capacity(m).expect("m >= 2")),
        ),
        (
            format!("bitvector({m})"),
            Box::new(BitVectorScheme::for_capacity(m).expect("m >= 2")),
        ),
    ];
    if m == 2 {
        schemes.push(("binary".to_string(), Box::new(BinaryScheme::new())));
    }
    schemes
}

#[test]
fn cross_intersection_exhaustive_at_small_capacities() {
    for m in [2u64, 3, 4, 5, 6, 7, 8, 9, 16, 33, 100, 255, 256, 257, 512] {
        for (name, scheme) in schemes_for(m) {
            check_cross_intersection(scheme.as_ref(), EXHAUSTIVE_MAX)
                .unwrap_or_else(|v| panic!("{name}: {v}"));
        }
    }
}

#[test]
fn cross_intersection_swept_to_2_pow_16() {
    // Powers of two, their neighbours (worst cases for ⌈lg m⌉ boundaries),
    // and 2¹⁶ itself.
    let mut sweep = Vec::new();
    for exp in [8u32, 10, 12, 13, 14, 15, 16] {
        let p = 1u64 << exp;
        sweep.extend([p - 1, p, p + 1]);
    }
    for m in sweep {
        for (name, scheme) in schemes_for(m) {
            // The exhaustive prefix catches structural bugs at the low
            // values; the sampled pass covers the full range.
            check_cross_intersection(scheme.as_ref(), EXHAUSTIVE_MAX)
                .unwrap_or_else(|v| panic!("{name} (prefix): {v}"));
            check_cross_intersection_sampled(scheme.as_ref(), SAMPLED_PAIRS, m ^ 0x5EED)
                .unwrap_or_else(|v| panic!("{name} (sampled): {v}"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random capacities anywhere in [2, 2¹⁶]: the property is not special
    /// to round numbers.
    #[test]
    fn cross_intersection_holds_at_random_capacities(m in 2u64..=(1u64 << 16), seed in any::<u64>()) {
        for (name, scheme) in schemes_for(m) {
            check_cross_intersection(scheme.as_ref(), 64)
                .unwrap_or_else(|v| panic!("{name} (prefix): {v}"));
            check_cross_intersection_sampled(scheme.as_ref(), 1_000, seed)
                .unwrap_or_else(|v| panic!("{name} (sampled): {v}"));
        }
    }
}
