//! End-to-end matrix: every consensus construction × every adversary class
//! × a range of system and alphabet sizes.

use std::sync::Arc;

use modular_consensus::prelude::*;
use modular_consensus::sim::Adversary;

type Maker = fn(u64, usize) -> Box<dyn Adversary>;

fn adversaries() -> Vec<(&'static str, Maker)> {
    vec![
        ("round-robin", |_, _| Box::new(adversary::RoundRobin::new())),
        ("random", |s, _| {
            Box::new(adversary::RandomScheduler::new(s))
        }),
        ("bursty", |_, n| {
            Box::new(adversary::FixedOrder::bursty(n, 5))
        }),
        ("write-blocker", |_, _| {
            Box::new(adversary::WriteBlocker::new())
        }),
        ("exploiter", |_, _| {
            Box::new(adversary::ImpatienceExploiter::new())
        }),
        ("split-keeper", |s, _| {
            Box::new(adversary::SplitKeeper::new(s))
        }),
        ("noisy", |s, n| {
            Box::new(sched::NoisyScheduler::new(n, 0.3, s))
        }),
        ("priority", |_, n| {
            Box::new(sched::PriorityScheduler::descending(n))
        }),
    ]
}

fn check_spec(spec: &dyn ObjectSpec, n: usize, m: u64, seeds: u64) {
    for (name, make) in adversaries() {
        for seed in 0..seeds {
            let inputs = harness::inputs::random(n, m, seed * 31 + 5);
            let mut adv = make(seed, n);
            let out =
                harness::run_object(spec, &inputs, adv.as_mut(), seed, &EngineConfig::default())
                    .unwrap_or_else(|e| panic!("{} under {name}: {e}", spec.name()));
            properties::check_consensus(&inputs, &out.outputs)
                .unwrap_or_else(|e| panic!("{} under {name} seed {seed}: {e}", spec.name()));
        }
    }
}

#[test]
fn binary_consensus_matrix() {
    let spec = ConsensusBuilder::binary().build();
    for n in [1usize, 2, 3, 5, 8, 16] {
        check_spec(&spec, n, 2, 6);
    }
}

#[test]
fn multivalued_consensus_matrix() {
    for m in [3u64, 7, 33] {
        let spec = ConsensusBuilder::multivalued(m).build();
        check_spec(&spec, 6, m, 5);
    }
}

#[test]
fn bitvector_ratifier_consensus() {
    let spec = ConsensusBuilder::new(
        Arc::new(FirstMoverConciliator::impatient()),
        Arc::new(Ratifier::bitvector(16)),
    )
    .build();
    check_spec(&spec, 5, 16, 5);
}

#[test]
fn consensus_over_a_custom_table_scheme() {
    // A user-defined quorum system (validated at construction by
    // mc-quorums) plugs straight into the ratifier and the full protocol.
    let scheme = modular_consensus::quorums::TableScheme::new(
        4,
        vec![vec![0], vec![1, 2], vec![1, 3]],
        vec![vec![1, 2, 3], vec![0, 3], vec![0, 2]],
    )
    .unwrap();
    let spec = ConsensusBuilder::new(
        Arc::new(FirstMoverConciliator::impatient()),
        Arc::new(Ratifier::with_scheme(Arc::new(scheme))),
    )
    .build();
    check_spec(&spec, 5, 3, 5);
}

#[test]
fn consensus_without_fast_path() {
    let spec = ConsensusBuilder::binary().without_fast_path().build();
    check_spec(&spec, 5, 2, 5);
}

#[test]
fn bounded_consensus_matrix() {
    let spec = ConsensusBuilder::binary().bounded(3).build();
    check_spec(&spec, 5, 2, 5);
}

#[test]
fn bounded_consensus_with_immediate_fallback() {
    // rounds = 1 with an adversarial scheduler exercises the fallback path.
    let spec = ConsensusBuilder::multivalued(4).bounded(1).build();
    check_spec(&spec, 6, 4, 8);
}

#[test]
fn cil_baseline_is_also_correct_consensus() {
    let spec = ConsensusBuilder::cil_baseline(4).build();
    // Fewer seeds: the baseline is slow by design.
    check_spec(&spec, 5, 4, 3);
}

#[test]
fn coin_based_consensus_for_binary_values() {
    // CoinConciliator + binary ratifier: the classic shared-coin route
    // (Theorem 6), which works even against the adaptive adversary.
    let spec = ConsensusBuilder::new(
        Arc::new(CoinConciliator::new(Arc::new(VotingSharedCoin::new()))),
        Arc::new(Ratifier::binary()),
    )
    .build();
    check_spec(&spec, 4, 2, 3);
}

#[test]
fn degenerate_single_process_decides_immediately() {
    let spec = ConsensusBuilder::binary().build();
    let out = harness::run_object(
        &spec,
        &[1],
        &mut adversary::RoundRobin::new(),
        0,
        &EngineConfig::default(),
    )
    .unwrap();
    assert!(out.outputs[0].is_decided());
    assert_eq!(out.outputs[0].value(), 1);
    // Solo process: 4 ops in R₋₁ and none elsewhere.
    assert!(out.metrics.total_work() <= 4);
}

#[test]
fn all_equal_inputs_never_run_a_conciliator() {
    let probe = ChainProbe::new();
    let spec = ConsensusBuilder::multivalued(8)
        .probe(Arc::clone(&probe))
        .build();
    for (name, make) in adversaries() {
        probe.reset();
        let inputs = harness::inputs::unanimous(6, 5);
        let mut adv = make(3, 6);
        let out =
            harness::run_object(&spec, &inputs, adv.as_mut(), 3, &EngineConfig::default()).unwrap();
        properties::check_consensus(&inputs, &out.outputs).unwrap();
        assert!(
            probe.max_stage() <= 1,
            "{name}: conciliator reached (stage {})",
            probe.max_stage()
        );
    }
}
