//! Cross-substrate conformance: the same protocol, inputs, adversary, and
//! seed must produce *equal* executions on the `mc-sim` model engine and on
//! `mc-runtime`'s real threads under the `mc-lab` scheduler — decisions,
//! traces, and work accounting alike — and the lab's recorded schedule/coin
//! script must replay to the same decisions through `mc-check`.
//!
//! The bounded matrix here runs in tier-1; the full 10⁴-seed campaign is
//! `cargo run --release -p mc-bench --bin lab_explore` (wired into CI).

use modular_consensus::check::{CheckConfig, Explorer};
use modular_consensus::lab::{
    check_conformance, Conformance, Lab, Protocol, RacyConsensus, StallingAdversary,
};
use modular_consensus::model::ProcessId;
use modular_consensus::runtime::Consensus;
use modular_consensus::sim::adversary::{
    ImpatienceExploiter, RandomScheduler, RoundRobin, SplitKeeper,
};
use modular_consensus::sim::sched::PctScheduler;
use modular_consensus::sim::Adversary;

type MakeAdversary = Box<dyn Fn() -> Box<dyn Adversary + Send>>;

fn adversary_menu(seed: u64) -> Vec<(&'static str, MakeAdversary)> {
    vec![
        (
            "random",
            Box::new(move || Box::new(RandomScheduler::new(seed)) as _),
        ),
        (
            "pct",
            Box::new(move || Box::new(PctScheduler::new(3, 500, seed)) as _),
        ),
        ("round-robin", Box::new(|| Box::new(RoundRobin::new()) as _)),
        (
            "split-keeper",
            Box::new(move || Box::new(SplitKeeper::new(seed)) as _),
        ),
        (
            "impatience-exploiter",
            Box::new(|| Box::new(ImpatienceExploiter::new()) as _),
        ),
    ]
}

#[test]
fn bounded_matrix_sim_and_lab_agree_exactly() {
    for protocol in [Protocol::Binary, Protocol::Multivalued(6)] {
        let m = protocol.capacity();
        for seed in 0..12 {
            for (name, make) in adversary_menu(seed) {
                let inputs: Vec<u64> = (0..3).map(|pid| (seed + pid) % m).collect();
                check_conformance(protocol, &inputs, &make, seed, 100_000).unwrap_or_else(
                    |divergence| panic!("{protocol} seed {seed} adversary {name}: {divergence}"),
                );
            }
        }
    }
}

/// At `n = 2` the exhaustive checker closes the triangle from the other
/// side: over *every* schedule and coin outcome (bounded depth), the model
/// protocol has no safety violation — and each lab run is one of those
/// paths, so sim/lab agreement plus checker exhaustiveness means all three
/// substrates certify the same protocol.
#[test]
fn exhaustive_checker_agrees_at_n2() {
    use modular_consensus::core::protocol::ConsensusBuilder;

    // The same construction `Protocol::Binary.spec()` wraps, held
    // concretely so the explorer can own it.
    let spec = ConsensusBuilder::binary().build();
    let report = Explorer::new(spec, vec![0, 1])
        .with_config(CheckConfig {
            max_steps: 16,
            max_paths: 5_000_000,
            ..CheckConfig::default()
        })
        .verify_safety()
        .unwrap();
    // The conciliator can flip coins forever, so deep paths truncate; what
    // the checker must certify is that no explored path — truncated or
    // complete — violates coherence, validity, or agreement.
    assert!(
        report.violation.is_none(),
        "checker found a violation the conformance suite missed: {:?}",
        report.violation
    );
    assert!(report.complete_paths > 0);

    // And the lab's runs at the same size stay inside that certified space.
    for seed in 0..24 {
        let make: MakeAdversary = Box::new(move || Box::new(RandomScheduler::new(seed)) as _);
        check_conformance(Protocol::Binary, &[0, 1], &make, seed, 50_000)
            .unwrap_or_else(|d| panic!("seed {seed}: {d}"));
    }
}

#[test]
fn crash_injection_matches_sim_crash_harness_decisions() {
    use modular_consensus::sim::harness::run_with_crashes;
    use modular_consensus::sim::EngineConfig;

    let crashes = [(ProcessId(1), 6)];
    for seed in 0..10 {
        let spec = Protocol::Binary.spec();
        let sim = run_with_crashes(
            spec.as_ref(),
            &[0, 1, 1],
            RandomScheduler::new(seed),
            &crashes,
            seed,
            &EngineConfig::default().with_max_steps(100_000).with_trace(),
        )
        .unwrap();

        let lab = Lab::new(3, Box::new(RandomScheduler::new(seed)), &crashes, 100_000);
        let consensus = Consensus::builder().n(3).memory(lab.memory()).build();
        let inputs = [0u64, 1, 1];
        let report = lab
            .run(seed, |pid, rng| consensus.decide(inputs[pid], rng))
            .unwrap();

        let sim_values: Vec<Option<u64>> =
            sim.decisions.iter().map(|d| d.map(|d| d.value())).collect();
        assert_eq!(
            sim_values, report.decisions,
            "seed {seed}: crash-run decisions diverge"
        );
        assert_eq!(
            sim.trace.as_ref().unwrap(),
            &report.trace,
            "seed {seed}: crash-run traces diverge"
        );
        assert_eq!(sim.metrics, report.metrics, "seed {seed}: crash metrics");
    }
}

#[test]
fn stalls_preserve_agreement_and_determinism() {
    let run = |seed: u64| {
        let adversary = StallingAdversary::new(RandomScheduler::new(seed), [(ProcessId(0), 40)]);
        let lab = Lab::new(3, Box::new(adversary), &[], 100_000);
        let consensus = Consensus::builder().n(3).memory(lab.memory()).build();
        lab.run(seed, |pid, rng| consensus.decide(pid as u64 % 2, rng))
            .unwrap()
    };
    for seed in 0..10 {
        let a = run(seed);
        let first = a.decisions[0].unwrap();
        assert!(a.decisions.iter().all(|&d| d == Some(first)));
        let b = run(seed);
        assert_eq!(
            a.trace, b.trace,
            "seed {seed}: stalled runs not reproducible"
        );
    }
}

/// The negative control: a deliberately broken protocol must be caught.
/// Without this, a fully green conformance suite would be indistinguishable
/// from a lab that never explores a dangerous interleaving.
#[test]
fn lab_catches_injected_coherence_bug() {
    let mut caught = false;
    for seed in 0..64 {
        let lab = Lab::new(2, Box::new(RandomScheduler::new(seed)), &[], 10_000);
        let racy = RacyConsensus::new_in(&lab.memory());
        let report = lab.run(seed, |pid, _| racy.decide(pid as u64)).unwrap();
        if report.decisions[0] != report.decisions[1] {
            caught = true;
            break;
        }
    }
    assert!(caught, "lab failed to exhibit the injected agreement bug");
}

/// Step-limit agreement: when the adversary starves the protocol past the
/// budget, both substrates must say so (rather than one completing).
#[test]
fn both_substrates_report_step_limit_together() {
    for seed in 0..5 {
        let make: MakeAdversary = Box::new(move || Box::new(RandomScheduler::new(seed)) as _);
        match check_conformance(Protocol::Binary, &[0, 1, 1], &make, seed, 8) {
            Ok(Conformance::BothStepLimited) => {}
            Ok(Conformance::Agreed { .. }) => panic!("8 steps cannot complete consensus"),
            Err(divergence) => panic!("seed {seed}: {divergence}"),
        }
    }
}
