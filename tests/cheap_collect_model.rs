//! The cheap-collect model (§6.2 item 4): constant-work ratification for any
//! m, and full consensus built on it.

use std::sync::Arc;

use modular_consensus::prelude::*;

fn config() -> EngineConfig {
    EngineConfig::default().with_cheap_collect()
}

#[test]
fn collect_ratifier_has_constant_work_for_huge_m() {
    // m plays no role in the cost: 4 ops for any value domain.
    for m_exponent in [1u32, 10, 40, 62] {
        let m = 1u64 << m_exponent;
        let inputs: Vec<u64> = (0..6).map(|t| (t * 977) % m).collect();
        let out = harness::run_object(
            &CollectRatifier::new(),
            &inputs,
            &mut adversary::RandomScheduler::new(m_exponent as u64),
            1,
            &config(),
        )
        .unwrap();
        properties::check_weak_consensus(&inputs, &out.outputs).unwrap();
        assert!(out.metrics.individual_work() <= 4);
    }
}

#[test]
fn cheap_collect_consensus_is_correct() {
    let spec = ConsensusBuilder::new(
        Arc::new(FirstMoverConciliator::impatient()),
        Arc::new(CollectRatifier::new()),
    )
    .build();
    for seed in 0..30 {
        let inputs = harness::inputs::random(6, 1 << 20, seed);
        let out = harness::run_object(
            &spec,
            &inputs,
            &mut adversary::RandomScheduler::new(seed),
            seed,
            &config(),
        )
        .unwrap();
        properties::check_consensus(&inputs, &out.outputs).unwrap();
    }
}

#[test]
fn cheap_collect_consensus_work_is_independent_of_m() {
    let spec = ConsensusBuilder::new(
        Arc::new(FirstMoverConciliator::impatient()),
        Arc::new(CollectRatifier::new()),
    )
    .build();
    let mut means = Vec::new();
    for m in [4u64, 1 << 20, 1 << 40] {
        let stats = harness::run_trials(
            &spec,
            60,
            23,
            &config(),
            |t| harness::inputs::random(6, m, t as u64),
            |seed| Box::new(adversary::RandomScheduler::new(seed)),
        )
        .unwrap();
        assert_eq!(stats.all_decided, stats.trials);
        means.push(stats.mean_total_work());
    }
    let (lo, hi) = (
        means.iter().cloned().fold(f64::INFINITY, f64::min),
        means.iter().cloned().fold(0.0, f64::max),
    );
    assert!(hi <= lo * 1.5, "work varied with m: {means:?}");
}

#[test]
fn collect_ops_fail_cleanly_outside_the_model() {
    let spec = ConsensusBuilder::new(
        Arc::new(FirstMoverConciliator::impatient()),
        Arc::new(CollectRatifier::new()),
    )
    .build();
    let err = harness::run_object(
        &spec,
        &[0, 1],
        &mut adversary::RoundRobin::new(),
        0,
        &EngineConfig::default(),
    )
    .unwrap_err();
    assert!(matches!(
        err,
        modular_consensus::sim::RunError::CollectDisallowed { .. }
    ));
}
