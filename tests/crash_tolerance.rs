//! Wait-freedom under crash failures: the paper's protocols tolerate up to
//! `n − 1` crashes (§1) — surviving processes always decide, and the
//! surviving outputs still satisfy every property.

use modular_consensus::model::ProcessId;
use modular_consensus::prelude::*;
use modular_consensus::sim::harness::run_with_crashes;

#[test]
fn consensus_survives_a_single_crash() {
    let spec = ConsensusBuilder::binary().build();
    for seed in 0..30 {
        let inputs = harness::inputs::alternating(5, 2);
        // Crash process 0 (an input-0 holder) early in the run.
        let outcome = run_with_crashes(
            &spec,
            &inputs,
            adversary::RandomScheduler::new(seed),
            &[(ProcessId(0), 3)],
            seed,
            &EngineConfig::default(),
        )
        .unwrap();
        let survivors = outcome.survivor_outputs();
        assert!(survivors.len() >= 4);
        properties::check_validity(&inputs, &survivors).unwrap();
        properties::check_agreement(&survivors).unwrap();
        assert!(survivors.iter().all(|d| d.is_decided()));
    }
}

#[test]
fn consensus_survives_n_minus_1_crashes() {
    // Everyone but process 3 crashes immediately: the lone survivor must
    // still decide (wait-freedom), and validity binds it to some input.
    let spec = ConsensusBuilder::multivalued(4).build();
    for seed in 0..20 {
        let inputs = vec![0u64, 1, 2, 3, 1, 2];
        let crashes: Vec<(ProcessId, u64)> = [0usize, 1, 2, 4, 5]
            .iter()
            .map(|&ix| (ProcessId(ix), 0))
            .collect();
        let outcome = run_with_crashes(
            &spec,
            &inputs,
            adversary::RandomScheduler::new(seed),
            &crashes,
            seed,
            &EngineConfig::default(),
        )
        .unwrap();
        let survivors = outcome.survivor_outputs();
        assert_eq!(survivors.len(), 1);
        assert!(survivors[0].is_decided());
        // Running completely alone, it must decide its own input via the
        // fast path.
        assert_eq!(survivors[0].value(), 3);
        // And nobody else produced an output.
        assert!(outcome.decisions.iter().filter(|d| d.is_some()).count() == 1);
    }
}

#[test]
fn mid_protocol_crashes_cannot_break_safety() {
    // Crash processes at assorted points — including mid-announcement in a
    // ratifier, the classic danger zone — and check coherence among
    // survivors plus any pre-crash deciders.
    let spec = ConsensusBuilder::multivalued(4).build();
    for seed in 0..60 {
        let n = 6;
        let inputs = harness::inputs::random(n, 4, seed);
        let crashes = vec![
            (ProcessId((seed % 6) as usize), seed % 9),
            (ProcessId(((seed + 3) % 6) as usize), (seed % 17) + 2),
        ];
        let outcome = run_with_crashes(
            &spec,
            &inputs,
            adversary::RandomScheduler::new(seed),
            &crashes,
            seed,
            &EngineConfig::default(),
        )
        .unwrap();
        let produced: Vec<_> = outcome.decisions.iter().copied().flatten().collect();
        properties::check_validity(&inputs, &produced).unwrap();
        properties::check_coherence(&produced).unwrap();
        // Survivors (non-doomed) must all have decided.
        for (ix, d) in outcome.decisions.iter().enumerate() {
            if !outcome.crashed.contains(&ProcessId(ix)) {
                assert!(
                    d.map(|d| d.is_decided()).unwrap_or(false),
                    "seed {seed}: p{ix}"
                );
            }
        }
    }
}

#[test]
fn ratifier_acceptance_survives_crashes() {
    // Unanimous inputs + crashes: survivors must still all decide the
    // unanimous value (acceptance restricted to survivors).
    for seed in 0..30 {
        let inputs = harness::inputs::unanimous(5, 2);
        let outcome = run_with_crashes(
            &Ratifier::binomial(4),
            &inputs,
            adversary::RandomScheduler::new(seed),
            &[(ProcessId(1), 2), (ProcessId(4), 1)],
            seed,
            &EngineConfig::default(),
        )
        .unwrap();
        for d in outcome.survivor_outputs() {
            assert!(d.is_decided());
            assert_eq!(d.value(), 2);
        }
    }
}

#[test]
fn crashed_process_work_is_still_counted() {
    let spec = ConsensusBuilder::binary().build();
    let inputs = harness::inputs::alternating(4, 2);
    let outcome = run_with_crashes(
        &spec,
        &inputs,
        adversary::RoundRobin::new(),
        &[(ProcessId(0), 6)],
        1,
        &EngineConfig::default(),
    )
    .unwrap();
    // p0 took steps before crashing; the cost model includes them.
    assert!(outcome.metrics.per_process[0] > 0);
    assert!(outcome.metrics.per_process[0] <= 6);
}
